"""Static analysis of the declarative coherence transition table.

The table in :mod:`repro.coherence.table` *is* the protocol: the
imperative handlers look their rule up and apply its actions, so any
defect in the table — a missing transition, two rules claiming the same
situation, a rule no execution can ever fire — is a protocol bug that
deserves a static, simulation-free verdict.  This module provides it,
in four passes, each **protocol-parametric**: pass a registered
:class:`~repro.coherence.specs.ProtocolSpec` (or any bare
:class:`~repro.coherence.table.TransitionTable`) and the completeness
domain, the observation vocabulary, and the conforming model are all
taken from it — ``--proto-matrix`` runs the whole battery over every
registered spec.  The passes:

* **completeness** — every ``(cache-state, directory-state, event)``
  combination in the table's domain is either covered by a rule (for
  every concrete value of its guard) or explicitly declared impossible
  with a reason; a combination that is both ruled and declared
  impossible is a contradiction;
* **determinism** — no two rules overlap: for every concrete situation
  at most one rule matches, so the table is a function, not a relation;
* **stutter-freedom** — no rule performs no actions *and* changes no
  state, and no cycle of action-free rules exists: every transition
  makes progress;
* **liveness / conformance** — the pass that keeps the table honest
  against reality.  It re-enumerates the reachable states of the PR-3
  model checker's abstraction (:class:`~repro.analysis.modelcheck.
  ProtocolModel`), projects every *observation* — a resident line that
  could be read, written, or evicted; an in-flight request about to be
  served — onto the table, and demands a successful lookup (a failure
  yields a **minimal witness trace**, BFS-shortest, in the model
  checker's rendering).  Each fired rule's declared next states are
  compared against what the model actually does (conformance); rules
  that never fire are **dead transitions** (the ``orphan-state``
  mutation); declared-impossible combinations that are nevertheless
  observed are unsoundness findings.  The reachable-state fingerprint is
  recomputed with :func:`~repro.analysis.modelcheck.
  reachable_fingerprint` and must equal the model checker's own — the
  two analyses agree on the state space or the run fails.

Soundness caveats are inherited from both sides: the table covers the
secondary-cache + home-directory machine (not the write-through primary,
not uncached accesses, no latency arithmetic), and the liveness pass is
exhaustive only up to the model's bounds — a rule dead under
``ModelConfig(num_caches=2, num_lines=1)`` might fire in a larger
machine, which is why dead transitions name the bounds in their message.

``mutation`` (via :func:`mutated_table`) seeds a deliberately broken
table — mirroring ``--mc-mutate`` / ``--trace-mutate`` — so the tests
and the README can demonstrate each class of finding end to end.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.modelcheck import (
    ModelConfig,
    ProtocolModel,
    State,
    reachable_fingerprint,
)
from repro.caches import LineState
from repro.coherence.directory import DirState
from repro.coherence.table import (
    DIRECTORY_PROTOCOL_TABLE,
    ProtoEvent,
    ProtocolTableError,
    Rule,
    TransitionTable,
    build_directory_table,
)

#: Seeded table defects accepted by :func:`mutated_table`, mirroring the
#: model checker's ``MUTATIONS`` and the trace checker's mutations.
PROTO_MUTATIONS = (
    # Remove the dirty-remote read fill: a reachable (INVALID, DIRTY,
    # read_miss) observation has neither rule nor impossibility
    # (completeness hole, with a minimal witness from the model).
    "drop-transition",
    # Duplicate the clean-eviction rule without its guard: two rules
    # match the same concrete situations (determinism violation).
    "overlap-rule",
    # Replace a precision impossibility with a rule no execution can
    # reach: the rule never fires in the model (dead transition).
    "orphan-state",
)


@dataclass(frozen=True)
class Observation:
    """One concrete situation a reachable model state presents to the
    table: a lookup key plus the guard value and, for served requests
    and evictions, the model edge to conform against."""

    cache_state: LineState
    dir_state: DirState
    event: ProtoEvent
    others: Optional[bool]
    cache: int
    line: int

    def describe(self) -> str:
        guard = (
            ""
            if self.others is None
            else f" [others={'yes' if self.others else 'no'}]"
        )
        return (
            f"c{self.cache}/l{self.line}: ({self.cache_state.name}, "
            f"{self.dir_state.name}, {self.event.value}){guard}"
        )


@dataclass
class ProtoFinding:
    """One table defect, with a minimal witness where one exists."""

    check: str       # completeness | determinism | stutter | liveness | conformance
    message: str
    #: Rendered witness steps (``action`` + state line pairs), BFS-
    #: minimal when derived from the model; empty for purely static
    #: findings whose witness is the rule text itself.
    witness: List[str] = field(default_factory=list)

    def format(self) -> str:
        lines = [f"[{self.check}] {self.message}"]
        for step in self.witness:
            lines.append(f"    {step}")
        return "\n".join(lines)


@dataclass
class ProtoLintResult:
    """Everything one protolint run established about a table."""

    table_name: str
    rules: int
    impossible: int
    table_fingerprint: str
    findings: List[ProtoFinding]
    #: Reachable states the liveness pass enumerated (0 when skipped).
    states_explored: int
    #: Observations projected onto the table across those states.
    observations_checked: int
    #: Fingerprint of the state set protolint itself reached.
    reachable_fingerprint: Optional[str]
    #: The model checker's fingerprint of the same bounds, for the
    #: agreement check (``None`` when the liveness pass was skipped).
    model_fingerprint: Optional[str]

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def fingerprints_agree(self) -> bool:
        return self.reachable_fingerprint == self.model_fingerprint

    def summary(self) -> str:
        verdict = (
            "table is complete, deterministic, live, and stutter-free"
            if self.ok
            else f"{len(self.findings)} violation(s)"
        )
        return (
            f"proto lint [{self.table_name}]: {self.rules} rules, "
            f"{self.impossible} impossible combos, "
            f"{self.states_explored} model states, "
            f"{self.observations_checked} observations: {verdict}; "
            f"table fingerprint {self.table_fingerprint[:16]}"
        )

    def format(self) -> str:
        lines = [self.summary()]
        lines.extend(f"  {finding.format()}" for finding in self.findings)
        return "\n".join(lines)


# -- static passes ------------------------------------------------------------

def check_completeness(table: TransitionTable) -> List[ProtoFinding]:
    """Every domain key is ruled (for both guard values) or declared
    impossible — and never both."""
    findings: List[ProtoFinding] = []
    for key in table.domain():
        cache_state, dir_state, event = key
        rules = table.rules_for(key)
        impossible = table.declared_impossible(key)
        rendered = f"({cache_state.name}, {dir_state.name}, {event.value})"
        if rules and impossible is not None:
            findings.append(
                ProtoFinding(
                    "completeness",
                    f"{rendered} is covered by rule(s) "
                    f"{[r.name for r in rules]} but also declared "
                    f"impossible: {impossible.reason}",
                )
            )
        elif not rules and impossible is None:
            findings.append(
                ProtoFinding(
                    "completeness",
                    f"{rendered} has no rule and no impossibility "
                    f"declaration",
                )
            )
        elif rules:
            for others in (True, False):
                if not any(rule.matches(others) for rule in rules):
                    findings.append(
                        ProtoFinding(
                            "completeness",
                            f"{rendered} has no rule matching "
                            f"others={others}: guards "
                            f"{[r.others_cached for r in rules]} do not "
                            f"cover the guard domain",
                        )
                    )
    return findings


def check_determinism(table: TransitionTable) -> List[ProtoFinding]:
    """No concrete situation satisfies two rules."""
    findings: List[ProtoFinding] = []
    for i, first in enumerate(table.rules):
        for second in table.rules[i + 1:]:
            if first.overlaps(second):
                findings.append(
                    ProtoFinding(
                        "determinism",
                        f"rules {first.name!r} and {second.name!r} "
                        f"overlap on ({first.cache_state.name}, "
                        f"{first.dir_state.name}, {first.event.value})",
                        witness=[first.describe(), second.describe()],
                    )
                )
    return findings


def check_stutter(table: TransitionTable) -> List[ProtoFinding]:
    """No transition is a pure no-op, and no cycle of action-free
    transitions exists (every path through the table does work)."""
    findings: List[ProtoFinding] = []
    edges: Dict[Tuple[LineState, DirState],
                List[Tuple[Rule, Tuple[LineState, DirState]]]] = {}
    for rule in table.rules:
        if not rule.actions:
            if not rule.changes_state():
                findings.append(
                    ProtoFinding(
                        "stutter",
                        f"rule {rule.name!r} performs no actions and "
                        f"changes no state",
                        witness=[rule.describe()],
                    )
                )
            else:
                edges.setdefault(
                    (rule.cache_state, rule.dir_state), []
                ).append(
                    (rule, (rule.next_cache_state, rule.next_dir_state))
                )
    # Cycle detection over the action-free subgraph (DFS, three-color).
    done: Set[Tuple[LineState, DirState]] = set()
    for start in list(edges):
        if start in done:
            continue
        stack: List[Tuple[Tuple[LineState, DirState], List[Rule]]] = [
            (start, [])
        ]
        on_path: Set[Tuple[LineState, DirState]] = set()
        while stack:
            node, path = stack.pop()
            if node in on_path:
                findings.append(
                    ProtoFinding(
                        "stutter",
                        "cycle of action-free transitions: "
                        + " -> ".join(r.name for r in path),
                        witness=[r.describe() for r in path],
                    )
                )
                break
            if node in done:
                continue
            on_path.add(node)
            done.add(node)
            for rule, succ in edges.get(node, ()):
                stack.append((succ, path + [rule]))
    return findings


# -- the liveness / conformance pass ------------------------------------------

def _observations(
    state: State, config: ModelConfig, spec
) -> List[Observation]:
    """Project one reachable model state onto the table's vocabulary.

    The spec decides which events a resident copy presents: its
    eviction event per cache state (with the guard value attached only
    when the spec actually guards that key), and whether a write to it
    is a hit."""
    obs: List[Observation] = []
    write_hit_states = spec.write_hit_states()
    for line in range(config.num_lines):
        entry = state.dirs[line]
        holders = [
            c for c in range(config.num_caches)
            if state.caches[c][line].state != LineState.INVALID
        ]
        for cache in range(config.num_caches):
            cl = state.caches[cache][line]
            if cl.state == LineState.INVALID:
                continue
            others = any(h != cache for h in holders)
            obs.append(
                Observation(
                    cl.state, entry.state, ProtoEvent.READ_HIT, None,
                    cache, line,
                )
            )
            evict_event = spec.eviction_event(cl.state)
            guarded = any(
                rule.others_cached is not None
                for rule in spec.table.rules
                if rule.event is evict_event and rule.cache_state == cl.state
            )
            obs.append(
                Observation(
                    cl.state, entry.state, evict_event,
                    others if guarded else None, cache, line,
                )
            )
            if cl.state in write_hit_states:
                obs.append(
                    Observation(
                        cl.state, entry.state, ProtoEvent.WRITE_HIT, None,
                        cache, line,
                    )
                )
    for msg in state.msgs:
        cl = state.caches[msg.cache][msg.line]
        entry = state.dirs[msg.line]
        if msg.kind == "R":
            event = ProtoEvent.READ_MISS
        elif cl.state == LineState.INVALID:
            event = ProtoEvent.WRITE_MISS
        else:
            event = ProtoEvent.WRITE_UPGRADE
        obs.append(
            Observation(
                cl.state, entry.state, event, None, msg.cache, msg.line
            )
        )
    return obs


def _conformance_target(
    model: ProtocolModel, state: State, observation: Observation
) -> Optional[Tuple[LineState, DirState]]:
    """What the model actually does for this observation: the
    requester's and the home entry's state after the corresponding
    model edge (``None`` when the model has no such edge — hits resolve
    inside the cache and touch no global state)."""
    cache, line = observation.cache, observation.line
    event = observation.event
    if event is ProtoEvent.READ_HIT:
        return None
    if event is ProtoEvent.WRITE_HIT:
        if observation.cache_state in model.spec.silent_upgrade_states:
            # MESI's E -> M is a hit with a state change; conform it
            # against the model's local silent-write edge.
            edges = model.silent_write(state, cache, line)
            if edges:
                _, succ = edges[0]
                return (succ.caches[cache][line].state, succ.dirs[line].state)
        return None
    if event in (
        ProtoEvent.EVICT_CLEAN, ProtoEvent.EVICT_DIRTY,
        ProtoEvent.EVICT_EXCLUSIVE,
    ):
        edge = model.evict(state, cache, line)
    else:
        msg = next(
            m for m in state.msgs if m.cache == cache and m.line == line
        )
        edge = (
            model.serve_read(state, msg)
            if event == ProtoEvent.READ_MISS
            else model.serve_write(state, msg)
        )
    if edge is None:
        return None
    _, succ = edge
    return (succ.caches[cache][line].state, succ.dirs[line].state)


def _witness_to(
    state: State,
    parent: Dict[State, Optional[Tuple[State, str]]],
) -> List[str]:
    """Rendered BFS-minimal trace from the initial state to ``state``."""
    steps: List[Tuple[str, State]] = []
    cursor: Optional[State] = state
    while cursor is not None:
        link = parent[cursor]
        if link is None:
            steps.append(("initial", cursor))
            cursor = None
        else:
            prev, label = link
            steps.append((label, cursor))
            cursor = prev
    steps.reverse()
    lines: List[str] = []
    for index, (action, step_state) in enumerate(steps):
        lines.append(f"#{index:<3d} {action}")
        lines.append(f"     {step_state.describe()}")
    return lines


def check_liveness(
    table: TransitionTable,
    config: Optional[ModelConfig] = None,
    spec=None,
) -> Tuple[List[ProtoFinding], int, int, str, Set[str]]:
    """Enumerate the model's reachable states, project every observation
    onto the table, and conform each fired rule against the model edge.

    ``spec`` selects the protocol the conforming model runs (default:
    the registry's ``directory-msi``); ``table`` may differ from the
    spec's own table when a seeded mutation is under test.

    Returns ``(findings, states, observations, fingerprint, fired)``.
    """
    config = config or ModelConfig()
    model = ProtocolModel(config, spec=spec)
    initial = model.initial_state()
    parent: Dict[State, Optional[Tuple[State, str]]] = {initial: None}
    queue = deque([initial])
    while queue:
        state = queue.popleft()
        for label, succ in model.successors(state):
            if succ not in parent:
                parent[succ] = (state, label)
                queue.append(succ)

    findings: List[ProtoFinding] = []
    reported: Set[Tuple] = set()
    fired: Set[str] = set()
    states_seen: Set[Tuple[LineState, DirState]] = set()
    observations = 0
    for state in parent:
        for observation in _observations(state, config, model.spec):
            observations += 1
            states_seen.add(
                (observation.cache_state, observation.dir_state)
            )
            key = (
                observation.cache_state, observation.dir_state,
                observation.event, observation.others,
            )
            try:
                rule = table.lookup(*key)
            except ProtocolTableError:
                if key in reported:
                    continue
                reported.add(key)
                declared = table.declared_impossible(key[:3])
                if declared is not None:
                    message = (
                        f"reachable observation {observation.describe()} "
                        f"is declared impossible ({declared.reason})"
                    )
                else:
                    message = (
                        f"reachable observation {observation.describe()} "
                        f"has no rule"
                    )
                findings.append(
                    ProtoFinding(
                        "liveness", message,
                        witness=_witness_to(state, parent),
                    )
                )
                continue
            fired.add(rule.name)
            target = _conformance_target(model, state, observation)
            if target is None:
                # Hits must be global no-ops for the model to be right
                # in not modelling them.
                if observation.event in (
                    ProtoEvent.READ_HIT, ProtoEvent.WRITE_HIT
                ) and rule.changes_state():
                    conf_key = ("hit", rule.name)
                    if conf_key not in reported:
                        reported.add(conf_key)
                        findings.append(
                            ProtoFinding(
                                "conformance",
                                f"hit rule {rule.name!r} declares a state "
                                f"change, but hits resolve inside the "
                                f"cache: {rule.describe()}",
                                witness=_witness_to(state, parent),
                            )
                        )
                continue
            declared_next = (rule.next_cache_state, rule.next_dir_state)
            if target != declared_next:
                conf_key = ("next", rule.name, target)
                if conf_key not in reported:
                    reported.add(conf_key)
                    findings.append(
                        ProtoFinding(
                            "conformance",
                            f"rule {rule.name!r} declares next states "
                            f"({declared_next[0].name}, "
                            f"{declared_next[1].name}) but the model "
                            f"transition yields ({target[0].name}, "
                            f"{target[1].name}) for "
                            f"{observation.describe()}",
                            witness=_witness_to(state, parent),
                        )
                    )

    for rule in table.rules:
        if rule.name not in fired:
            findings.append(
                ProtoFinding(
                    "liveness",
                    f"dead transition: rule {rule.name!r} never fires in "
                    f"any of the {len(parent)} reachable states "
                    f"(bounds: {config.num_caches} caches, "
                    f"{config.num_lines} line(s)) — the combination "
                    f"({rule.cache_state.name}, {rule.dir_state.name}, "
                    f"{rule.event.value}) is unreachable",
                    witness=[rule.describe()],
                )
            )
    for cache_state, dir_state in sorted(
        states_seen, key=lambda pair: (pair[0].value, pair[1].value)
    ):
        # Defensive completeness of the *state* vocabulary: every
        # LineState x DirState pairing the model reaches must appear in
        # some rule key, else the table's state space is missing a
        # reachable state entirely (a dead *state* in reverse).
        if not any(
            rule.cache_state == cache_state and rule.dir_state == dir_state
            for rule in table.rules
        ):
            findings.append(
                ProtoFinding(
                    "liveness",
                    f"dead state: the model reaches ({cache_state.name}, "
                    f"{dir_state.name}) but no rule mentions it",
                )
            )
    return (
        findings, len(parent), observations,
        reachable_fingerprint(parent), fired,
    )


# -- entry points -------------------------------------------------------------

def lint_table(
    table: Optional[TransitionTable] = None,
    config: Optional[ModelConfig] = None,
    with_model: bool = True,
    spec=None,
) -> ProtoLintResult:
    """Run every pass over ``table`` (default: the directory protocol).

    Pass ``spec`` to lint a registered protocol spec: its table becomes
    the lint target (unless ``table`` overrides it with a mutated
    variant) and the conforming model runs that protocol's semantics.

    ``with_model=False`` skips the liveness/conformance pass (used by
    unit tests exercising the static passes on synthetic tables whose
    states the model cannot reach).
    """
    if table is None:
        table = spec.table if spec is not None else DIRECTORY_PROTOCOL_TABLE
    findings: List[ProtoFinding] = []
    findings.extend(check_completeness(table))
    findings.extend(check_determinism(table))
    findings.extend(check_stutter(table))
    states = observations = 0
    reach_fp: Optional[str] = None
    model_fp: Optional[str] = None
    if with_model:
        config = config or ModelConfig()
        live, states, observations, reach_fp, _ = check_liveness(
            table, config, spec=spec
        )
        findings.extend(live)
        # Agreement check: the model checker enumerating the *same*
        # bounds must see the same state set, or one of the two
        # analyses is exploring a different protocol.
        from repro.analysis.modelcheck import check_protocol

        model_fp = check_protocol(config, spec=spec).fingerprint
        if reach_fp != model_fp:
            findings.append(
                ProtoFinding(
                    "liveness",
                    f"reachable-state fingerprint {reach_fp[:16]} does "
                    f"not match the model checker's {model_fp[:16]} "
                    f"under the same bounds",
                )
            )
    return ProtoLintResult(
        table_name=table.name,
        rules=len(table.rules),
        impossible=len(table.impossible),
        table_fingerprint=table.fingerprint(),
        findings=findings,
        states_explored=states,
        observations_checked=observations,
        reachable_fingerprint=reach_fp,
        model_fingerprint=model_fp,
    )


def mutated_table(mutation: str) -> TransitionTable:
    """A deliberately broken copy of the directory table (test/demo
    only, mirroring ``--mc-mutate`` / ``--trace-mutate``)."""
    base = build_directory_table()
    if mutation == "drop-transition":
        rules = tuple(
            rule for rule in base.rules
            if rule.name != "read-miss-dirty-remote"
        )
        return TransitionTable(
            rules, base.impossible, name=f"{base.name}[drop-transition]"
        )
    if mutation == "overlap-rule":
        from repro.coherence.table import Action

        shadow = Rule(
            "evict-clean-shadow",
            LineState.SHARED, DirState.SHARED, ProtoEvent.EVICT_CLEAN,
            None,
            (Action.DROP_SHARER,),
            LineState.INVALID, DirState.UNOWNED,
        )
        return TransitionTable(
            base.rules + (shadow,), base.impossible,
            name=f"{base.name}[overlap-rule]",
        )
    if mutation == "orphan-state":
        from repro.coherence.table import Action

        orphan_key = (
            LineState.SHARED, DirState.DIRTY, ProtoEvent.WRITE_UPGRADE
        )
        orphan = Rule(
            "write-upgrade-stale",
            *orphan_key,
            None,
            (Action.READ_MEMORY, Action.SET_OWNER),
            LineState.DIRTY, DirState.DIRTY,
        )
        impossible = tuple(
            imp for imp in base.impossible if imp.key != orphan_key
        )
        return TransitionTable(
            base.rules + (orphan,), impossible,
            name=f"{base.name}[orphan-state]",
        )
    raise ValueError(
        f"unknown mutation {mutation!r}; expected one of {PROTO_MUTATIONS}"
    )
