"""Static differential protocol equivalence: are two specs
observationally the same memory?

``--proto-matrix`` proves each registered
:class:`~repro.coherence.specs.ProtocolSpec` safe *in isolation*; this
pass proves the relation the registry's docstrings claim between them —
"MESI is MSI plus silent E upgrades", "MOESI is MESI plus dirty
sharing" — by product-composing the two specs' reachable abstract
models and deciding **observational trace equivalence** on load-value /
ownership behavior.

Visible alphabet
================

The abstract model (:mod:`repro.analysis.modelcheck`) already
enumerates every serialization of issues, directory serves, NACKs, and
evictions under a bounded configuration.  The differ relabels each edge
as either *visible* or *internal* (tau):

* ``W(c,l,v)`` — a write by cache ``c`` to line ``l`` takes effect
  globally: the directory grants ownership (``serve WRITE``) or a
  silent-upgrade write completes locally (MESI's E -> M).  This is the
  point the write becomes the line's latest value, i.e. the ownership
  transfer a program can observe through subsequent loads.
* ``R(c,l)->v`` — a read by cache ``c`` of line ``l`` completes with
  value ``v`` (``serve READ``; ``v`` is read off the requester's filled
  copy in the successor state).  This is the load-value observation.
* everything else — issues (the request's *effect* is the serve),
  evictions, write-backs, NACK/retry bounces, downgrades — is tau.

Two protocols are declared equivalent when their tau-closed visible
trace languages coincide.  The decision procedure is the classical
product construction: determinize each labelled transition system by
subset construction under tau-closure, then BFS the product of the two
determinizations; a pair where one side enables a visible action the
other cannot match refutes equivalence, and because the exploration is
breadth-first over visible steps (with a lexicographic tie-break on
action labels), the first divergence found is a minimal witness — the
shortest observable program behavior distinguishing the protocols.

Soundness caveats (also in DESIGN.md §15):

* The verdict is **trace equivalence, not bisimilarity**: internal
  branching structure (where a protocol commits to a choice) is not
  compared.  For coherence safety — which loads can return which
  values — trace equivalence is exactly the right relation; liveness
  and divergence (a protocol stuttering forever) are out of scope.
* The proof holds **up to the bounded configuration** (caches, lines,
  abstract values, in-flight messages, retry budget), like every other
  claim the model checker makes.  The default bounds are the ones CI
  enumerates.
* Values are abstract tokens: a stale reply from a departed owner is
  modelled as the distinguished value 0, so a mutation must corrupt a
  line whose latest value is nonzero to be caught — the BFS finds such
  a prefix automatically when one exists.

``mutated_spec`` seeds the demonstration defect
(``mesi-without-e-writeback``): MESI's clean-exclusive eviction drops
the line *silently*, leaving the home convinced the departed cache
still owns it.  The differ refutes ``directory-msi ~ mesi[mutated]``
with a witness ending in a stale load — the reason the E write-back
notification exists.
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.modelcheck import ModelConfig, ProtocolModel
from repro.caches import LineState
from repro.coherence.directory import DirState
from repro.coherence.specs import ProtocolSpec
from repro.coherence.table import ProtoEvent, Rule, TransitionTable

#: Seeded defects for the ``--diff-mutate`` demonstration (applied to
#: the *right* spec of the pair).
DIFF_MUTATIONS = ("mesi-without-e-writeback",)

#: A visible action: ("R"|"W", cache, line, value).
VisAct = Tuple[str, int, int, int]

_SERVE_READ = re.compile(r"dir: serve READ\(c(\d+),l(\d+)\)")
_SERVE_WRITE = re.compile(r"dir: serve WRITE\(c(\d+),l(\d+),v(\d+)\)")
_SILENT_WRITE = re.compile(r"c(\d+): silent write line(\d+) v(\d+)")


def format_act(act: VisAct) -> str:
    kind, cache, line, value = act
    if kind == "R":
        return f"R(c{cache},l{line})->v{value}"
    return f"W(c{cache},l{line},v{value})"


def _classify(label: str, succ) -> Optional[VisAct]:
    """The visible action of one model edge, or ``None`` for tau."""
    m = _SERVE_WRITE.match(label)
    if m:
        return ("W", int(m.group(1)), int(m.group(2)), int(m.group(3)))
    m = _SILENT_WRITE.match(label)
    if m:
        return ("W", int(m.group(1)), int(m.group(2)), int(m.group(3)))
    m = _SERVE_READ.match(label)
    if m:
        cache, line = int(m.group(1)), int(m.group(2))
        return ("R", cache, line, succ.caches[cache][line].value)
    return None


class _LTS:
    """One spec's reachable model as a labelled transition system with
    integer states and tau/visible edges."""

    __slots__ = ("initial", "tau", "visible", "states")

    def __init__(self, spec: ProtocolSpec, config: ModelConfig) -> None:
        model = ProtocolModel(config, spec=spec)
        init = model.initial_state()
        index: Dict[object, int] = {init: 0}
        self.tau: Dict[int, List[int]] = {}
        self.visible: Dict[int, List[Tuple[VisAct, int]]] = {}
        queue = deque([init])
        while queue:
            state = queue.popleft()
            src = index[state]
            for label, succ in model.successors(state):
                if succ not in index:
                    if len(index) >= config.max_states:
                        raise RuntimeError(
                            f"protodiff: spec {spec.name!r} exceeds "
                            f"{config.max_states} states under the "
                            f"given bounds"
                        )
                    index[succ] = len(index)
                    queue.append(succ)
                dst = index[succ]
                act = _classify(label, succ)
                if act is None:
                    self.tau.setdefault(src, []).append(dst)
                else:
                    self.visible.setdefault(src, []).append((act, dst))
        self.initial = 0
        self.states = len(index)

    def closure(self, states: FrozenSet[int]) -> FrozenSet[int]:
        """Tau-closure of a macro state."""
        seen: Set[int] = set(states)
        stack = list(states)
        while stack:
            for dst in self.tau.get(stack.pop(), ()):
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return frozenset(seen)

    def enabled(self, macro: FrozenSet[int]) -> Set[VisAct]:
        acts: Set[VisAct] = set()
        for s in macro:
            acts.update(act for act, _dst in self.visible.get(s, ()))
        return acts

    def step(self, macro: FrozenSet[int], act: VisAct) -> FrozenSet[int]:
        targets = {
            dst
            for s in macro
            for a, dst in self.visible.get(s, ())
            if a == act
        }
        return self.closure(frozenset(targets))


@dataclass(frozen=True)
class Divergence:
    """A minimal distinguishing behavior: after the visible ``prefix``
    (possible in both protocols), ``action`` is possible only in
    ``enabled_in``."""

    prefix: Tuple[VisAct, ...]
    action: VisAct
    enabled_in: str
    missing_in: str

    def format(self) -> str:
        lines = [
            f"divergence after {len(self.prefix)} visible step(s):"
        ]
        for i, act in enumerate(self.prefix):
            lines.append(f"  {i + 1}. {format_act(act)}")
        lines.append(
            f"  then {format_act(self.action)}: possible in "
            f"{self.enabled_in}, impossible in {self.missing_in}"
        )
        return "\n".join(lines)


class ProtoDiffResult:
    """Outcome of one differential run."""

    __slots__ = (
        "left", "right", "config", "equivalent", "divergence",
        "left_states", "right_states", "product_states",
    )

    def __init__(
        self,
        left: str,
        right: str,
        config: ModelConfig,
        equivalent: bool,
        divergence: Optional[Divergence],
        left_states: int,
        right_states: int,
        product_states: int,
    ) -> None:
        self.left = left
        self.right = right
        self.config = config
        self.equivalent = equivalent
        self.divergence = divergence
        self.left_states = left_states
        self.right_states = right_states
        self.product_states = product_states

    @property
    def ok(self) -> bool:
        return self.equivalent

    def summary(self) -> str:
        cfg = self.config
        verdict = (
            "observationally equivalent"
            if self.equivalent
            else "NOT equivalent"
        )
        return (
            f"proto diff {self.left} ~ {self.right}: {verdict} on "
            f"load-value/ownership traces ({self.left_states} vs "
            f"{self.right_states} model states, {self.product_states} "
            f"product macro-states; bounds: {cfg.num_caches} caches, "
            f"{cfg.num_lines} line(s), {cfg.num_values} value(s))"
        )

    def format(self) -> str:
        text = self.summary()
        if self.divergence is not None:
            text += "\n" + self.divergence.format()
        return text


def diff_config() -> ModelConfig:
    """The bounded configuration the differ explores: the model-check
    defaults minus the NACK/retry edges, which only multiply tau
    interleavings without changing the visible language."""
    return ModelConfig(nacks=False)


def diff_specs(
    left: ProtocolSpec,
    right: ProtocolSpec,
    config: Optional[ModelConfig] = None,
) -> ProtoDiffResult:
    """Decide observational trace equivalence of two specs.

    Builds both reachable models, determinizes them under tau-closure,
    and BFSes the product; the first one-sided visible action found (in
    breadth-first order, ties broken lexicographically) is returned as
    the minimal witness.
    """
    config = config or diff_config()
    lts_l = _LTS(left, config)
    lts_r = _LTS(right, config)
    start = (
        lts_l.closure(frozenset({lts_l.initial})),
        lts_r.closure(frozenset({lts_r.initial})),
    )
    seen = {start}
    queue: deque = deque([(start, ())])
    product_states = 1
    divergence: Optional[Divergence] = None
    while queue and divergence is None:
        (macro_l, macro_r), prefix = queue.popleft()
        en_l = lts_l.enabled(macro_l)
        en_r = lts_r.enabled(macro_r)
        for act in sorted(en_l | en_r):
            if act not in en_r:
                divergence = Divergence(prefix, act, left.name, right.name)
                break
            if act not in en_l:
                divergence = Divergence(prefix, act, right.name, left.name)
                break
            nxt = (lts_l.step(macro_l, act), lts_r.step(macro_r, act))
            if nxt not in seen:
                seen.add(nxt)
                product_states += 1
                queue.append((nxt, prefix + (act,)))
    return ProtoDiffResult(
        left.name, right.name, config,
        divergence is None, divergence,
        lts_l.states, lts_r.states, product_states,
    )


def mutated_spec(mutation: str) -> ProtocolSpec:
    """A deliberately broken MESI variant (test/demo only, mirroring
    ``--mc-mutate`` / ``--proto-mutate`` / ``--lat-mutate``).

    ``mesi-without-e-writeback``: the clean-exclusive eviction drops
    the line silently — no write-back notification, the directory entry
    stays DIRTY for a departed owner.  A later read miss is forwarded
    to the stale owner and fills with garbage, which the differ
    witnesses as a load-value divergence from ``directory-msi``.
    """
    if mutation not in DIFF_MUTATIONS:
        raise ValueError(
            f"unknown protodiff mutation {mutation!r}; expected one of "
            f"{DIFF_MUTATIONS}"
        )
    from repro.coherence.specs import get_spec
    import dataclasses

    base = get_spec("mesi")
    broken = Rule(
        "evict-exclusive",
        LineState.EXCLUSIVE, DirState.DIRTY, ProtoEvent.EVICT_EXCLUSIVE,
        None,
        (),  # the write-back notification is dropped
        LineState.INVALID, DirState.DIRTY,  # home still believes E
    )
    rules = tuple(
        broken if rule.name == "evict-exclusive" else rule
        for rule in base.table.rules
    )
    table = TransitionTable(
        rules, base.table.impossible,
        name=f"{base.table.name}[{mutation}]",
        cache_states=base.table.cache_states,
        dir_states=base.table.dir_states,
        events=base.table.events,
    )
    return dataclasses.replace(
        base, name=f"mesi[{mutation}]", table=table, runtime_supported=False
    )
