"""Axiomatic trace-conformance checking of simulated executions.

The simulator is an *operational* model of each consistency model: SC
stalls, PC keeps a FIFO write buffer, WC fences at every synchronization
operation, RC fences at releases.  This module is the *second, axiomatic*
definition of the same models, derived independently in the TSOtool
style, and an offline checker that validates each recorded execution
against it:

1. With ``MachineConfig(trace_memory_events=True)`` the machine installs
   a :class:`MemoryEventTrace` recorder; the processor, memory interface,
   and coherence protocol append one :class:`TraceEvent` per shared read,
   write, acquire, and release (with issue / perform / complete times).
   With the flag off no recorder exists anywhere and runs are
   bit-identical to builds without this module.
2. :func:`check_trace` reconstructs the reads-from (rf) and coherence
   (co) relations from recorded load values, adds the declared model's
   preserved-program-order and synchronization axioms, and cycle-checks
   the union po|rf|co|fr — emitting a minimal human-readable witness
   cycle on violation.  Operational performance-order axioms (a blocking
   read holds up later ops; an SC write completes before the next op; a
   release fence covers earlier writes' completions) are checked
   directly against the recorded timestamps.

Value semantics match :mod:`repro.analysis.litmus`: the simulator is a
timing model, so a read's "value" is the number of writes to its cache
line that performed (ownership retired) at or before the read performed.
Coherence order is the protocol *transaction order* (event order), which
is how the eager-drain write buffer actually serializes writes — two
same-line writes can retire out of issue order (miss then dirty-hit)
while their ownership transactions stay ordered.

Soundness caveats (see DESIGN.md for the full table):

* a node always sees its *own* earlier writes (store forwarding and the
  eagerly-updated local hierarchy), so its reads' versions are clamped
  up to its latest prior same-line write; internal reads-from edges are
  therefore not added to the happens-before graph (program order and
  po-loc already cover them);
* cross-context visibility *within* one node under PC (a context
  observing its neighbour's unretired buffered write) is not modelled as
  an rf edge, so PC multi-context flag idioms are outside the checked
  fragment — the litmus matrix and the per-app CI runs use one context
  per processor;
* fault-injection runs retry protocol transactions, which would record
  duplicate write events; trace checking is meant for fault-free runs.
"""

from __future__ import annotations

import types
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.config import Consistency, ContentionConfig, dash_scaled_config
from repro.consistency import policy_for

#: Names of the intentionally-seeded consistency bugs (``repro-1991
#: check --trace-check --trace-mutate <name>``); each must be caught by
#: :func:`check_trace` with a printed witness.
MUTATION_NAMES = (
    "drop-inval-ack",
    "release-overtakes-writes",
    "forward-unissued-write",
)

#: (litmus test, model) used to demonstrate each seeded mutation.
_DEMO_FOR: Dict[str, Tuple[str, Consistency]] = {
    "drop-inval-ack": ("SB", Consistency.SC),
    "release-overtakes-writes": ("MP_flag", Consistency.RC),
    "forward-unissued-write": ("SB", Consistency.PC),
}


class TraceEvent:
    """One recorded memory or synchronization event.

    ``kind`` is ``"R"`` / ``"W"`` / ``"ACQ"`` / ``"REL"``.  Times:
    ``issue`` is when the operation reached the memory system, ``perform``
    when it took effect (data arrival for reads, ownership retire for
    writes, grant for acquires, visibility for releases), ``complete``
    additionally covers invalidation acknowledgements (writes), and
    ``fence`` is the release's write-completion fence point.
    """

    __slots__ = (
        "eid", "kind", "tid", "op_index", "node", "addr", "line",
        "issue", "perform", "complete", "fence", "source", "rf_eid",
        "access_class", "sync", "participants",
    )

    def __init__(
        self,
        eid: int,
        kind: str,
        tid: int,
        op_index: int,
        node: int,
        addr: int,
        line: int,
        issue: int,
        perform: int,
        complete: int,
        fence: Optional[int] = None,
        source: str = "",
        rf_eid: Optional[int] = None,
        access_class: str = "",
        sync: Optional[str] = None,
        participants: int = 0,
    ) -> None:
        self.eid = eid
        self.kind = kind
        self.tid = tid
        self.op_index = op_index
        self.node = node
        self.addr = addr
        self.line = line
        self.issue = issue
        self.perform = perform
        self.complete = complete
        self.fence = fence
        self.source = source
        self.rf_eid = rf_eid
        self.access_class = access_class
        self.sync = sync
        self.participants = participants

    def __repr__(self) -> str:
        return (
            f"TraceEvent(eid={self.eid}, {self.kind} t{self.tid}:"
            f"op#{self.op_index} addr={self.addr:#x} issue={self.issue} "
            f"perform={self.perform})"
        )


class MemoryEventTrace:
    """Append-only per-run event trace.

    The recorder is deliberately dumb: hooks hand it raw timestamps at
    the point each access is resolved, and all interpretation happens
    offline in :func:`check_trace`.
    """

    def __init__(self, line_bytes: int, allocator: Optional[Any] = None) -> None:
        if line_bytes <= 0:
            raise ValueError("line_bytes must be positive")
        self.line_bytes = line_bytes
        self.allocator = allocator
        self.events: List[TraceEvent] = []
        #: eid of the most recently recorded write (any node).
        self.last_write_eid: Optional[int] = None
        self._cur_tid = -1
        self._cur_op = -1
        #: (node, line) -> eid of the buffered write a forward would hit.
        self._buffered: Dict[Tuple[int, int], int] = {}

    # -- recording hooks ----------------------------------------------------

    def line_of(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def begin_op(self, tid: int, op_index: int) -> None:
        """Called by the processor before a READ/WRITE reaches the
        memory interface, so nested hooks can attribute the event."""
        self._cur_tid = tid
        self._cur_op = op_index

    def record_read(
        self,
        node: int,
        addr: int,
        issue: int,
        perform: int,
        source: str,
        access_class: str,
        rf_eid: Optional[int] = None,
    ) -> TraceEvent:
        event = TraceEvent(
            eid=len(self.events), kind="R", tid=self._cur_tid,
            op_index=self._cur_op, node=node, addr=addr,
            line=self.line_of(addr), issue=issue, perform=perform,
            complete=perform, source=source, rf_eid=rf_eid,
            access_class=access_class,
        )
        self.events.append(event)
        return event

    def record_write(
        self,
        node: int,
        addr: int,
        issue: int,
        perform: int,
        complete: int,
        access_class: str,
    ) -> TraceEvent:
        event = TraceEvent(
            eid=len(self.events), kind="W", tid=self._cur_tid,
            op_index=self._cur_op, node=node, addr=addr,
            line=self.line_of(addr), issue=issue, perform=perform,
            complete=complete, source="protocol", access_class=access_class,
        )
        self.events.append(event)
        self.last_write_eid = event.eid
        return event

    def note_buffered_line(self, node: int, line: int) -> None:
        """The write just recorded now sits in ``node``'s write buffer
        for ``line``; same-line reads may forward from it."""
        if self.last_write_eid is not None:
            self._buffered[(node, line)] = self.last_write_eid

    def buffered_writer(self, node: int, line: int) -> Optional[int]:
        return self._buffered.get((node, line))

    def record_acquire(
        self,
        tid: int,
        op_index: int,
        node: int,
        addr: int,
        issue: int,
        sync: str,
        participants: int = 0,
    ) -> TraceEvent:
        event = TraceEvent(
            eid=len(self.events), kind="ACQ", tid=tid, op_index=op_index,
            node=node, addr=addr, line=self.line_of(addr), issue=issue,
            perform=issue, complete=issue, source="sync", sync=sync,
            participants=participants,
        )
        self.events.append(event)
        return event

    def record_release(
        self,
        tid: int,
        op_index: int,
        node: int,
        addr: int,
        issue: int,
        fence: int,
        perform: int,
        sync: str,
        participants: int = 0,
    ) -> TraceEvent:
        event = TraceEvent(
            eid=len(self.events), kind="REL", tid=tid, op_index=op_index,
            node=node, addr=addr, line=self.line_of(addr), issue=issue,
            perform=perform, complete=perform, fence=fence, source="sync",
            sync=sync, participants=participants,
        )
        self.events.append(event)
        return event

    def wrap_grant(
        self, event: TraceEvent, on_grant: Callable[[int], None]
    ) -> Callable[[int], None]:
        """Wrap a blocked acquire's grant callback so the event's
        perform time is patched in when the grant finally arrives."""

        def granted(grant_time: int) -> None:
            event.perform = grant_time
            event.complete = grant_time
            on_grant(grant_time)

        return granted

    # -- rendering ----------------------------------------------------------

    def describe(self, event: TraceEvent) -> str:
        where = ""
        if self.allocator is not None:
            region = self.allocator.region_of(event.addr)
            if region is not None:
                where = f" ({region.name}+{event.addr - region.base:#x})"
        tag = event.sync or event.access_class or event.source
        if event.kind == "REL" and event.fence is not None:
            times = (
                f"issue={event.issue} fence={event.fence} "
                f"perform={event.perform}"
            )
        elif event.kind == "W":
            times = (
                f"issue={event.issue} perform={event.perform} "
                f"complete={event.complete}"
            )
        else:
            times = f"issue={event.issue} perform={event.perform}"
        return (
            f"t{event.tid}:op#{event.op_index} {event.kind} "
            f"addr={event.addr:#x}{where} [{tag}] {times}"
        )


# -- the conformance report --------------------------------------------------


@dataclass(frozen=True)
class Violation:
    """One conformance failure with a human-readable witness."""

    axiom: str
    detail: str
    witness: str

    def format(self) -> str:
        return f"[{self.axiom}] {self.detail}\n{self.witness}"


@dataclass
class ConformanceReport:
    """Everything :func:`check_trace` derived from one execution."""

    model: Consistency
    num_events: int
    violations: List[Violation] = field(default_factory=list)
    #: Derived value (count of line versions seen) per read eid.
    read_values: Dict[int, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        head = (
            f"trace-check[{self.model.name}]: {self.num_events} events, "
            f"{len(self.violations)} violation(s)"
        )
        if not self.violations:
            return head + " -- conformant"
        return "\n".join([head] + [v.format() for v in self.violations])


# -- the checker --------------------------------------------------------------

#: How many distinct cycles to report before truncating the output.
_MAX_CYCLE_REPORTS = 5


def check_trace(trace: MemoryEventTrace, model: Consistency) -> ConformanceReport:
    """Validate one recorded execution against ``model``'s axioms."""
    policy = policy_for(model)
    events = trace.events
    report = ConformanceReport(model=model, num_events=len(events))
    num_events = len(events)

    by_tid: Dict[int, List[TraceEvent]] = {}
    for e in events:
        by_tid.setdefault(e.tid, []).append(e)

    # Coherence order: per-line protocol transaction (event) order.
    co: Dict[int, List[TraceEvent]] = {}
    for e in events:
        if e.kind == "W":
            co.setdefault(e.line, []).append(e)
    co_pos: Dict[int, int] = {}
    performs: Dict[int, List[int]] = {}
    own_eids: Dict[Tuple[int, int], List[int]] = {}
    own_idx: Dict[Tuple[int, int], List[int]] = {}
    for line, writes in co.items():
        performs[line] = sorted(w.perform for w in writes)
        for index, w in enumerate(writes):
            co_pos[w.eid] = index
            key = (line, w.node)
            own_eids.setdefault(key, []).append(w.eid)
            own_idx.setdefault(key, []).append(index)

    graph: Dict[int, List[Tuple[int, str]]] = {e.eid: [] for e in events}

    def add_edge(src: int, dst: int, label: str) -> None:
        graph.setdefault(dst, [])
        graph.setdefault(src, []).append((dst, label))

    next_aux = [num_events]

    def new_aux() -> int:
        nid = next_aux[0]
        next_aux[0] += 1
        graph[nid] = []
        return nid

    # -- rf / fr from recorded values ------------------------------------
    for e in events:
        if e.kind != "R":
            continue
        writes = co.get(e.line, [])
        # The simulator's value semantics (see repro.analysis.litmus): a
        # read is serialized at the memory system when it ISSUES — the
        # data-arrival latency is delivery, not ordering — so it returns
        # the count of same-line writes whose ownership retired by then.
        v = bisect_right(performs.get(e.line, []), e.issue)
        # Own-hierarchy visibility: the issuing node's caches and write
        # buffer reflect its own writes at transaction (event) order, so
        # a read never returns a version older than the node's latest
        # prior write to the line, even if that write's global retire is
        # still pending.
        key = (e.line, e.node)
        if key in own_eids:
            k = bisect_right(own_eids[key], e.eid)
            if k:
                v = max(v, own_idx[key][k - 1] + 1)
        if e.source == "forward":
            w: Optional[TraceEvent] = None
            if e.rf_eid is not None and 0 <= e.rf_eid < num_events:
                w = events[e.rf_eid]
            bad = None
            if w is None:
                bad = "forwarded read names no buffered write"
            elif w.kind != "W":
                bad = f"forward source eid {e.rf_eid} is {w.kind}, not a write"
            elif w.line != e.line:
                bad = (
                    f"read of line {e.line:#x} forwarded from a buffered "
                    f"write to line {w.line:#x}"
                )
            elif w.node != e.node:
                bad = f"forwarded from node {w.node}'s write buffer"
            if bad is not None:
                witness = "  " + trace.describe(e)
                if w is not None:
                    witness += "\n    claimed source: " + trace.describe(w)
                report.violations.append(
                    Violation("well-formed-forward", bad, witness)
                )
            else:
                assert w is not None
                v = max(v, co_pos[w.eid] + 1)
        report.read_values[e.eid] = v
        if 0 < v <= len(writes):
            w_rf = writes[v - 1]
            # Internal (same-node) reads-from is covered by po/po-loc;
            # adding it would point backwards in time for forwards.
            if w_rf.node != e.node:
                add_edge(w_rf.eid, e.eid, "rf (reads-from)")
        if v < len(writes):
            add_edge(e.eid, writes[v].eid, "fr (from-read)")

    # -- coherence chains -------------------------------------------------
    for writes in co.values():
        for a, b in zip(writes, writes[1:]):
            add_edge(a.eid, b.eid, "co (coherence order)")

    # -- preserved program order per model --------------------------------
    for tid in sorted(by_tid):
        evs = by_tid[tid]
        if model is Consistency.SC:
            for a, b in zip(evs, evs[1:]):
                add_edge(a.eid, b.eid, "po (SC: program order)")
            continue
        # Reads are blocking under every model, and acquires (WC: every
        # sync op) hold up everything after them.
        enters = ("R", "ACQ", "REL") if model is Consistency.WC else ("R", "ACQ")
        label = "ppo (blocking read/acquire before later ops)"
        prev_aux: Optional[int] = None
        for i in range(len(evs) - 1):
            e = evs[i]
            if prev_aux is None and e.kind not in enters:
                continue
            aux = new_aux()
            if prev_aux is not None:
                add_edge(prev_aux, aux, label)
            if e.kind in enters:
                add_edge(e.eid, aux, label)
            add_edge(aux, evs[i + 1].eid, label)
            prev_aux = aux
        # Same-line accesses stay in program order under every model.
        last_at_line: Dict[int, TraceEvent] = {}
        for e in evs:
            if e.kind not in ("R", "W"):
                continue
            prev = last_at_line.get(e.line)
            if prev is not None:
                add_edge(prev.eid, e.eid, "po-loc (same line)")
            last_at_line[e.line] = e
        if model is Consistency.PC:
            # The FIFO write buffer keeps writes in issue order.  Note
            # releases are NOT in this chain: PC has no fences, so a
            # release hands off on the synchronization manager's
            # timeline while earlier buffered writes are still in
            # flight — a W->REL edge here would be unsound (it produces
            # false cycles on lock-protected app data).
            prev_w: Optional[TraceEvent] = None
            for e in evs:
                if e.kind == "W":
                    if prev_w is not None:
                        add_edge(prev_w.eid, e.eid, "ppo (PC: FIFO write order)")
                    prev_w = e
        if policy.release_requires_completion:
            exits = (
                ("ACQ", "REL") if policy.acquire_requires_completion else ("REL",)
            )
            if any(e.kind in exits for e in evs[1:]):
                rel_label = (
                    "ppo (WC: fence after earlier ops)"
                    if model is Consistency.WC
                    else "ppo (RC: release after earlier ops)"
                )
                prev_aux = None
                for e in evs:
                    if prev_aux is not None and e.kind in exits:
                        add_edge(prev_aux, e.eid, rel_label)
                    aux = new_aux()
                    add_edge(e.eid, aux, rel_label)
                    if prev_aux is not None:
                        add_edge(prev_aux, aux, rel_label)
                    prev_aux = aux

    # -- synchronization edges --------------------------------------------
    sync_groups: Dict[Tuple[str, int], List[TraceEvent]] = {}
    for e in events:
        if e.sync is not None:
            sync_groups.setdefault((e.sync, e.addr), []).append(e)
    for (sync, _addr), sevs in sorted(sync_groups.items()):
        if sync == "lock":
            ordered = sorted(sevs, key=lambda e: (e.perform, e.eid))
            last_rel: Optional[TraceEvent] = None
            for e in ordered:
                if e.kind == "REL":
                    last_rel = e
                elif e.kind == "ACQ" and last_rel is not None:
                    add_edge(last_rel.eid, e.eid, "sync (lock hand-off)")
        elif sync == "flag":
            sets = sorted(
                (e for e in sevs if e.kind == "REL"),
                key=lambda e: (e.perform, e.eid),
            )
            for e in sevs:
                if e.kind != "ACQ":
                    continue
                for s in sets:
                    if s.perform <= e.perform:
                        add_edge(s.eid, e.eid, "sync (flag set before wait)")
                        break
        else:  # barrier: arrivals release all same-episode departures
            arrivals = sorted(
                (e for e in sevs if e.kind == "REL"),
                key=lambda e: (e.perform, e.eid),
            )
            departures = sorted(
                (e for e in sevs if e.kind == "ACQ"),
                key=lambda e: (e.perform, e.eid),
            )
            i = 0
            while i < len(arrivals):
                participants = max(1, arrivals[i].participants)
                for a in arrivals[i:i + participants]:
                    for d in departures[i:i + participants]:
                        add_edge(a.eid, d.eid, "sync (barrier episode)")
                i += participants

    # -- operational performance-order axioms ------------------------------
    _check_performance_order(trace, by_tid, model, policy, report)

    # -- cycle check --------------------------------------------------------
    cyclic = [scc for scc in _tarjan_sccs(graph) if len(scc) > 1]

    def scc_key(scc: List[int]) -> Tuple[int, int]:
        reals = [n for n in scc if n < num_events]
        return (len(scc), min(reals) if reals else num_events)

    for scc in sorted(cyclic, key=scc_key)[:_MAX_CYCLE_REPORTS]:
        reals = sorted(n for n in scc if n < num_events)
        if not reals:
            continue  # aux-only components cannot form cycles
        cycle = _shortest_cycle(graph, set(scc), reals[0])
        real_cycle = [(n, lbl) for n, lbl in cycle if n < num_events]
        report.violations.append(
            Violation(
                axiom="hb-acyclicity",
                detail=(
                    f"cycle of {len(real_cycle)} events in "
                    f"po|rf|co|fr+sync under the {model.name} axioms"
                ),
                witness=_render_cycle(trace, real_cycle),
            )
        )
    if len(cyclic) > _MAX_CYCLE_REPORTS:
        report.violations.append(
            Violation(
                axiom="hb-acyclicity",
                detail=(
                    f"{len(cyclic) - _MAX_CYCLE_REPORTS} further cyclic "
                    f"component(s) suppressed"
                ),
                witness="",
            )
        )
    return report


def _check_performance_order(
    trace: MemoryEventTrace,
    by_tid: Dict[int, List[TraceEvent]],
    model: Consistency,
    policy: Any,
    report: ConformanceReport,
) -> None:
    """Direct timestamp checks of the operational ordering guarantees."""

    def pair(prev: TraceEvent, nxt: TraceEvent, why: str) -> str:
        # A violated per-thread ordering axiom is a 2-event cycle: the
        # program-order edge forward and the observed temporal order
        # (the later op acting before the earlier one finished) back.
        return (
            "  witness cycle (2 events):\n"
            "    " + trace.describe(prev)
            + f"\n      --[{why}]--> " + trace.describe(nxt)
            + "\n      --[observed: acts before the prior op finished]--> "
            + f"back to t{prev.tid}:op#{prev.op_index} (cycle closes)"
        )

    for tid in sorted(by_tid):
        evs = by_tid[tid]
        max_complete: Optional[TraceEvent] = None
        for i, e in enumerate(evs):
            if i > 0:
                prev = evs[i - 1]
                if prev.kind in ("R", "ACQ") and e.issue < prev.perform:
                    report.violations.append(Violation(
                        "blocking-order",
                        f"t{tid}: op#{e.op_index} issued at {e.issue}, "
                        f"before the blocking {prev.kind} op#{prev.op_index} "
                        f"performed at {prev.perform}",
                        pair(prev, e, "blocking read/acquire holds later ops"),
                    ))
                if model is Consistency.SC:
                    if prev.kind == "W" and e.issue < prev.complete:
                        report.violations.append(Violation(
                            "sc-write-completion",
                            f"t{tid}: op#{e.op_index} issued at {e.issue} "
                            f"while write op#{prev.op_index} completes at "
                            f"{prev.complete} (invalidation acks outstanding)",
                            pair(prev, e, "SC: write completes before next op"),
                        ))
                    if prev.kind == "REL" and e.issue < prev.perform:
                        report.violations.append(Violation(
                            "sc-release-order",
                            f"t{tid}: op#{e.op_index} issued at {e.issue} "
                            f"before release op#{prev.op_index} performed at "
                            f"{prev.perform}",
                            pair(prev, e, "SC: release visible before next op"),
                        ))
            if max_complete is not None:
                if e.kind == "REL" and policy.release_requires_completion:
                    fence = e.fence if e.fence is not None else e.perform
                    if fence < max_complete.complete:
                        report.violations.append(Violation(
                            "release-completion",
                            f"t{tid}: release op#{e.op_index} fenced at "
                            f"{fence} while write op#{max_complete.op_index} "
                            f"completes at {max_complete.complete}",
                            pair(max_complete, e,
                                 "release waits for earlier writes' acks"),
                        ))
                if e.kind == "ACQ" and policy.acquire_requires_completion:
                    if e.issue < max_complete.complete:
                        report.violations.append(Violation(
                            "acquire-completion",
                            f"t{tid}: acquire op#{e.op_index} issued at "
                            f"{e.issue} while write op#{max_complete.op_index} "
                            f"completes at {max_complete.complete}",
                            pair(max_complete, e,
                                 "WC: acquire waits for earlier writes"),
                        ))
            if e.kind == "W" and (
                max_complete is None or e.complete > max_complete.complete
            ):
                max_complete = e


def _tarjan_sccs(graph: Mapping[int, List[Tuple[int, str]]]) -> List[List[int]]:
    """Iterative Tarjan strongly-connected components."""
    index_of: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    sccs: List[List[int]] = []
    counter = 0
    for root in graph:
        if root in index_of:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_i = work.pop()
            if edge_i == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            succs = graph.get(node, [])
            descend: Optional[int] = None
            while edge_i < len(succs):
                dst = succs[edge_i][0]
                edge_i += 1
                if dst not in index_of:
                    descend = dst
                    break
                if dst in on_stack:
                    low[node] = min(low[node], index_of[dst])
            if descend is not None:
                work.append((node, edge_i))
                work.append((descend, 0))
                continue
            if low[node] == index_of[node]:
                scc: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                sccs.append(scc)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return sccs


def _shortest_cycle(
    graph: Mapping[int, List[Tuple[int, str]]], scc: Set[int], start: int
) -> List[Tuple[int, str]]:
    """BFS shortest cycle through ``start`` inside one SCC.

    Returns ``[(node, out_label), ...]``: node ``i``'s ``out_label``
    annotates its edge to node ``i+1`` (the last node's edge closes the
    cycle back to ``start``).
    """
    parent: Dict[int, Tuple[int, str]] = {}
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for dst, label in graph.get(node, ()):
            if dst not in scc:
                continue
            if dst == start:
                rev_nodes: List[int] = []
                rev_labels: List[str] = []
                cur = node
                while cur != start:
                    rev_nodes.append(cur)
                    p, lbl = parent[cur]
                    rev_labels.append(lbl)
                    cur = p
                nodes = [start] + rev_nodes[::-1]
                labels = rev_labels[::-1] + [label]
                return list(zip(nodes, labels))
            if dst not in seen:
                seen.add(dst)
                parent[dst] = (node, label)
                queue.append(dst)
    return []


def _render_cycle(
    trace: MemoryEventTrace, real_cycle: Sequence[Tuple[int, str]]
) -> str:
    if not real_cycle:
        return "  (unrenderable cycle)"
    lines = [f"  witness cycle ({len(real_cycle)} events):"]
    first = trace.events[real_cycle[0][0]]
    lines.append("    " + trace.describe(first))
    for i, (eid, label) in enumerate(real_cycle):
        if i + 1 < len(real_cycle):
            nxt = trace.describe(trace.events[real_cycle[i + 1][0]])
        else:
            nxt = f"back to t{first.tid}:op#{first.op_index} (cycle closes)"
        lines.append(f"      --[{label}]--> {nxt}")
    return "\n".join(lines)


# -- seeded mutations ----------------------------------------------------------


def _write_dropping_acks(self: Any, addr: int, now: int) -> Any:
    """BUG: an SC write releases the processor at ownership (retire)
    instead of completion, letting the next op overtake pending
    invalidation acknowledgements."""
    from repro.system.memiface import NodeMemoryInterface, WriteResult

    self._expire(now)
    if self.config.caching_shared_data and self.policy.write_stalls_processor:
        outcome = self.protocol.write(self.node, addr, now)
        return WriteResult(outcome.retire, 0, outcome.access_class)
    return NodeMemoryInterface.write(self, addr, now)


def _release_point_overtaking(self: Any, now: int) -> int:
    """BUG: releases no longer wait for buffered writes to complete."""
    return now


def _read_forwarding_unissued(self: Any, addr: int, now: int) -> Any:
    """BUG: reads forward from the write buffer whenever it is
    non-empty, regardless of whether the buffered line matches."""
    from repro.coherence import AccessClass
    from repro.system.memiface import NodeMemoryInterface, ReadResult

    self._expire(now)
    line = self.protocol.line_of(addr)
    if self._wb_lines and self.mshr.lookup(line) is None:
        victim = min(self._wb_lines)
        self.store_forwards += 1
        lat = self.config.latency.read_primary_hit
        if self.trace is not None:
            self.trace.record_read(
                node=self.node, addr=addr, issue=now, perform=now + lat,
                source="forward",
                access_class=AccessClass.PRIMARY_HIT.value,
                rf_eid=self.trace.buffered_writer(self.node, victim),
            )
        return ReadResult(now + lat, AccessClass.PRIMARY_HIT, False)
    return NodeMemoryInterface.read(self, addr, now)


def apply_mutation(machine: Any, name: str) -> None:
    """Install one intentionally-buggy behaviour on a built machine
    (instance rebinding, same technique as the fault injector)."""
    if name == "drop-inval-ack":
        for iface in machine.memifaces:
            setattr(iface, "write", types.MethodType(_write_dropping_acks, iface))
    elif name == "release-overtakes-writes":
        for iface in machine.memifaces:
            setattr(
                iface, "release_point",
                types.MethodType(_release_point_overtaking, iface),
            )
    elif name == "forward-unissued-write":
        for iface in machine.memifaces:
            setattr(
                iface, "read",
                types.MethodType(_read_forwarding_unissued, iface),
            )
    else:
        raise ValueError(
            f"unknown mutation {name!r}; expected one of {MUTATION_NAMES}"
        )


# -- traced runners ------------------------------------------------------------


class TracedRun(NamedTuple):
    """A litmus schedule run with tracing on, plus its conformance."""

    trace: MemoryEventTrace
    report: ConformanceReport
    #: Thread-major body read values derived from the trace (same shape
    #: as the operational litmus outcome tuple).
    outcome: Tuple[int, ...]
    #: The machine the schedule ran on, for operational assertions
    #: (e.g. per-node ``store_forwards`` counters) alongside the
    #: axiomatic ones.
    machine: Any = None


def litmus_read_values(
    trace: MemoryEventTrace,
    report: ConformanceReport,
    num_threads: int,
    skip_per_tid: int,
) -> Tuple[int, ...]:
    """Thread-major derived values of body reads (warm reads skipped)."""
    values: List[int] = []
    for tid in range(num_threads):
        reads = [e for e in trace.events if e.tid == tid and e.kind == "R"]
        for e in reads[skip_per_tid:]:
            values.append(report.read_values[e.eid])
    return tuple(values)


def run_traced_litmus(
    test: Any,
    model: Consistency,
    schedule: Optional[Sequence[int]] = None,
    config_overrides: Optional[Mapping[str, object]] = None,
    mutation: Optional[str] = None,
) -> TracedRun:
    """Run one litmus schedule with tracing enabled and check it.

    Unlike :func:`repro.analysis.litmus._run_one` this tolerates body
    reads that bypass the protocol (store forwards, MSHR combines): the
    trace records them with their provenance, which is exactly what the
    bypass corner tests and mutation demos need.
    """
    from repro.analysis.litmus import _build_program
    from repro.system import Machine

    sched = tuple(schedule) if schedule is not None else tuple([0] * test.num_threads)
    addresses: Dict[str, int] = {}
    program = _build_program(test, sched, addresses)
    kwargs: Dict[str, object] = dict(
        num_processors=test.num_threads,
        consistency=model,
        contention=ContentionConfig(enabled=False),
        trace_memory_events=True,
    )
    if config_overrides:
        kwargs.update(config_overrides)
    config = dash_scaled_config(**kwargs)
    machine = Machine(config)
    if mutation is not None:
        apply_mutation(machine, mutation)
    machine.load(program)
    machine.run()
    trace = machine.trace
    assert trace is not None
    report = check_trace(trace, model)
    outcome = litmus_read_values(
        trace, report, test.num_threads, len(test.data_vars)
    )
    return TracedRun(
        trace=trace, report=report, outcome=outcome, machine=machine
    )


def run_mutation_demo(name: str) -> ConformanceReport:
    """Run the demonstration litmus test for one seeded mutation; the
    returned report must NOT be ok (the checker must catch the bug)."""
    from repro.analysis.litmus import standard_suite

    if name not in _DEMO_FOR:
        raise ValueError(
            f"unknown mutation {name!r}; expected one of {MUTATION_NAMES}"
        )
    test_name, model = _DEMO_FOR[name]
    test = next(t for t in standard_suite() if t.name == test_name)
    return run_traced_litmus(test, model, mutation=name).report


def check_app(
    app: str,
    model: Consistency = Consistency.RC,
    config_overrides: Optional[dict] = None,
) -> ConformanceReport:
    """Trace one smoke-scale application run and check conformance.

    ``config_overrides`` fields (e.g. ``engine_backend``) are applied on
    top of the standard traced configuration — the backend-matrix tests
    use this to prove the conformance verdict and the trace itself are
    identical under the heap and wheel calendars.
    """
    from repro.experiments.registry import SMOKE_PROCESSES, smoke_program
    from repro.system import Machine

    config = dash_scaled_config(
        num_processors=SMOKE_PROCESSES,
        consistency=model,
        trace_memory_events=True,
    )
    if config_overrides:
        config = config.replace(**config_overrides)
    machine = Machine(config)
    machine.load(smoke_program(app))
    machine.run()
    assert machine.trace is not None
    return check_trace(machine.trace, model)
