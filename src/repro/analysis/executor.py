"""Untimed logical execution of Tango op streams.

The dynamic analyses (race detection, op-stream lint) need each
application thread's operation stream *with* a legal interleaving of the
synchronization operations, but they do not need the architecture
simulator's timing.  :class:`LogicalExecutor` runs a
:class:`~repro.tango.Program`'s generator threads under a
run-until-block round-robin scheduler that honours LOCK/UNLOCK,
FLAG_SET/FLAG_WAIT, and BARRIER semantics — any schedule it produces is
one the real machine could produce, so the Python-level computation the
threads perform stays consistent.

Listeners observe the stream through :class:`OpListener` callbacks,
fired in the serialization order the scheduler chose; synchronization
callbacks (``on_lock_acquired``, ``on_flag_passed``,
``on_barrier_release``) fire at the grant point, which is exactly where
a vector-clock analysis must create its happens-before edges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.memlayout import SharedMemoryAllocator
from repro.sim.engine import DeadlockError, SimulationError
from repro.tango import ops as O
from repro.tango.program import ProcessEnv, Program


class OpListener:
    """Base class for op-stream observers; override what you need."""

    def on_start(
        self, allocator: SharedMemoryAllocator, num_processes: int
    ) -> None:
        """Fired once, after the program's shared world is built."""

    def on_op(self, thread: int, index: int, op: tuple) -> None:
        """Every yielded op, before interpretation (lint hook)."""

    def on_read(self, thread: int, index: int, addr: int) -> None:
        pass

    def on_write(self, thread: int, index: int, addr: int) -> None:
        pass

    def on_lock_acquired(self, thread: int, addr: int) -> None:
        pass

    def on_unlock(self, thread: int, addr: int) -> None:
        pass

    def on_flag_set(self, thread: int, addr: int) -> None:
        pass

    def on_flag_passed(self, thread: int, addr: int) -> None:
        """The thread's FLAG_WAIT was satisfied (acquire edge)."""

    def on_barrier_release(self, addr: int, threads: Sequence[int]) -> None:
        """All ``threads`` crossed the barrier at ``addr`` together."""

    def on_thread_done(self, thread: int) -> None:
        pass

    def on_finish(self) -> None:
        """Fired once, after every thread has finished."""


class _State(enum.Enum):
    RUNNABLE = 0
    BLOCKED = 1
    DONE = 2


@dataclass
class _Thread:
    tid: int
    gen: Iterator[tuple]
    state: _State = _State.RUNNABLE
    blocked_on: str = ""
    op_index: int = -1


@dataclass
class _Lock:
    holder: Optional[int] = None
    waiters: List[int] = field(default_factory=list)


@dataclass
class _Barrier:
    participants: int = 0
    arrived: List[int] = field(default_factory=list)


@dataclass
class ExecutionSummary:
    """What the logical run did (diagnostics for reports)."""

    num_threads: int = 0
    ops_executed: int = 0
    reads: int = 0
    writes: int = 0
    lock_acquires: int = 0
    barrier_episodes: int = 0
    flag_sets: int = 0


class LogicalExecutor:
    """Run a program's threads under synchronization-only semantics."""

    def __init__(
        self,
        program: Program,
        num_processes: int,
        listeners: Sequence[OpListener] = (),
        num_nodes: Optional[int] = None,
        page_bytes: int = 512,
        strict: bool = True,
        max_ops: int = 200_000_000,
        slice_ops: int = 500,
    ) -> None:
        self.program = program
        self.num_processes = num_processes
        self.listeners = list(listeners)
        self.num_nodes = num_nodes or num_processes
        self.page_bytes = page_bytes
        self.strict = strict
        self.max_ops = max_ops
        self.slice_ops = slice_ops
        self.summary = ExecutionSummary(num_threads=num_processes)
        self.allocator = SharedMemoryAllocator(
            num_nodes=self.num_nodes, page_bytes=page_bytes
        )
        self._threads: List[_Thread] = []

    # -- setup ---------------------------------------------------------------

    def _spawn_threads(self) -> List[_Thread]:
        self.program.build(self.allocator, self.num_processes)
        for listener in self.listeners:
            listener.on_start(self.allocator, self.num_processes)
        threads = []
        for pid in range(self.num_processes):
            env = ProcessEnv(
                process_id=pid,
                num_processes=self.num_processes,
                node=pid % self.num_nodes,
                context=pid // self.num_nodes,
                num_nodes=self.num_nodes,
            )
            threads.append(_Thread(tid=pid, gen=self.program.thread(env)))
        return threads

    # -- the scheduler -------------------------------------------------------

    def run(self) -> ExecutionSummary:
        threads = self._threads = self._spawn_threads()
        locks: Dict[int, _Lock] = {}
        flags_set: Set[int] = set()
        flag_waiters: Dict[int, List[int]] = {}
        barriers: Dict[int, _Barrier] = {}
        cursor = 0

        def runnable_exists() -> bool:
            return any(t.state is _State.RUNNABLE for t in threads)

        while True:
            if not runnable_exists():
                blocked = [t for t in threads if t.state is _State.BLOCKED]
                if not blocked:
                    break  # all done
                detail = ", ".join(
                    f"thread {t.tid} on {t.blocked_on}" for t in blocked
                )
                raise DeadlockError(
                    f"logical execution deadlocked with {len(blocked)} "
                    f"thread(s) blocked: {detail}"
                )
            # Round-robin: find the next runnable thread from the cursor.
            while threads[cursor].state is not _State.RUNNABLE:
                cursor = (cursor + 1) % len(threads)
            thread = threads[cursor]
            cursor = (cursor + 1) % len(threads)

            # Run it until it blocks, finishes, or exhausts its time
            # slice (a slice keeps spin-waiting threads — PTHOR's task
            # queue polling — from starving the rest of the system).
            remaining = self.slice_ops
            while thread.state is _State.RUNNABLE and remaining > 0:
                remaining -= 1
                try:
                    op = next(thread.gen)
                except StopIteration:
                    thread.state = _State.DONE
                    for listener in self.listeners:
                        listener.on_thread_done(thread.tid)
                    break
                thread.op_index += 1
                self.summary.ops_executed += 1
                if self.summary.ops_executed > self.max_ops:
                    raise SimulationError(
                        f"logical execution exceeded {self.max_ops} ops; "
                        "likely a livelock in the program"
                    )
                for listener in self.listeners:
                    listener.on_op(thread.tid, thread.op_index, op)
                self._interpret(
                    thread, op, locks, flags_set, flag_waiters, barriers
                )

        for listener in self.listeners:
            listener.on_finish()
        return self.summary

    # -- op interpretation ----------------------------------------------------

    def _interpret(
        self,
        thread: _Thread,
        op: tuple,
        locks: Dict[int, _Lock],
        flags_set: Set[int],
        flag_waiters: Dict[int, List[int]],
        barriers: Dict[int, _Barrier],
    ) -> None:
        tid = thread.tid
        if not isinstance(op, tuple) or not op:
            if self.strict:
                raise SimulationError(
                    f"thread {tid} yielded malformed op {op!r}"
                )
            return
        code = op[0]
        if code in (O.BUSY, O.PREFETCH):
            return
        if code == O.READ:
            self.summary.reads += 1
            for listener in self.listeners:
                listener.on_read(tid, thread.op_index, op[1])
            return
        if code == O.WRITE:
            self.summary.writes += 1
            for listener in self.listeners:
                listener.on_write(tid, thread.op_index, op[1])
            return
        if code == O.LOCK:
            addr = op[1]
            lock = locks.setdefault(addr, _Lock())
            if lock.holder is None:
                lock.holder = tid
                self.summary.lock_acquires += 1
                for listener in self.listeners:
                    listener.on_lock_acquired(tid, addr)
            else:
                # Covers self-deadlock too: a thread re-locking a lock it
                # holds waits behind itself, and deadlock detection fires.
                lock.waiters.append(tid)
                thread.state = _State.BLOCKED
                thread.blocked_on = f"LOCK({addr:#x})"
            return
        if code == O.UNLOCK:
            addr = op[1]
            lock = locks.get(addr)
            if lock is None or lock.holder != tid:
                if self.strict:
                    holder = lock.holder if lock else None
                    raise SimulationError(
                        f"thread {tid} unlocked {addr:#x} held by {holder}"
                    )
                return
            for listener in self.listeners:
                listener.on_unlock(tid, addr)
            if lock.waiters:
                next_tid = lock.waiters.pop(0)
                lock.holder = next_tid
                self._wake(next_tid)
                self.summary.lock_acquires += 1
                for listener in self.listeners:
                    listener.on_lock_acquired(next_tid, addr)
            else:
                lock.holder = None
            return
        if code == O.FLAG_SET:
            addr = op[1]
            self.summary.flag_sets += 1
            for listener in self.listeners:
                listener.on_flag_set(tid, addr)
            flags_set.add(addr)
            for waiter in flag_waiters.pop(addr, []):
                self._wake(waiter)
                for listener in self.listeners:
                    listener.on_flag_passed(waiter, addr)
            return
        if code == O.FLAG_WAIT:
            addr = op[1]
            if addr in flags_set:
                for listener in self.listeners:
                    listener.on_flag_passed(tid, addr)
            else:
                flag_waiters.setdefault(addr, []).append(tid)
                thread.state = _State.BLOCKED
                thread.blocked_on = f"FLAG_WAIT({addr:#x})"
            return
        if code == O.BARRIER:
            addr, participants = op[1], op[2]
            barrier = barriers.setdefault(addr, _Barrier())
            if not barrier.arrived:
                barrier.participants = participants
            elif barrier.participants != participants and self.strict:
                raise SimulationError(
                    f"barrier {addr:#x}: thread {tid} declared "
                    f"{participants} participants, episode started with "
                    f"{barrier.participants}"
                )
            barrier.arrived.append(tid)
            if len(barrier.arrived) >= barrier.participants:
                released = barrier.arrived
                barriers[addr] = _Barrier()
                self.summary.barrier_episodes += 1
                for listener in self.listeners:
                    listener.on_barrier_release(addr, released)
                for other in released:
                    if other != tid:
                        self._wake(other)
            else:
                thread.state = _State.BLOCKED
                thread.blocked_on = (
                    f"BARRIER({addr:#x}, "
                    f"{len(barrier.arrived)}/{barrier.participants})"
                )
            return
        if self.strict:
            raise SimulationError(
                f"thread {tid} yielded unknown opcode {code!r}"
            )

    def _wake(self, tid: int) -> None:
        # The scheduler only stores blocked threads in one wait list at a
        # time, so a wake always targets a BLOCKED thread.
        self._threads[tid].state = _State.RUNNABLE
        self._threads[tid].blocked_on = ""


def execute_program(
    program: Program,
    num_processes: int,
    listeners: Sequence[OpListener] = (),
    **kwargs,
) -> ExecutionSummary:
    """Convenience wrapper: build a :class:`LogicalExecutor` and run it."""
    executor = LogicalExecutor(program, num_processes, listeners, **kwargs)
    return executor.run()
