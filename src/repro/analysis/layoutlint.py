"""Static memory-layout and prefetch-placement lint.

Two classes of layout hazards distort the paper's headline numbers
without being functional bugs, so nothing else in the repo catches them:

* **False sharing** — a cache line written by two or more threads whose
  written address sets within the line are disjoint.  Every write
  invalidates the other threads' copies even though no data is actually
  communicated, inflating the invalidation and miss counts the paper's
  SC/RC comparison rests on.
* **Malformed prefetch streams** — a prefetch that is *redundant* (the
  same thread re-prefetches a line whose earlier prefetch has not been
  consumed yet), falls out of the 16-entry prefetch buffer's *capacity
  window* (so many later prefetches issue before the line's first use
  that the entry would have been displaced), or is *never used* at all
  (pure overhead).

The pass runs the program through the untimed
:class:`~repro.analysis.executor.LogicalExecutor` (so it sees the real
op streams under a legal interleaving) and reports
:class:`~repro.analysis.oplint.LintIssue` findings with the stable
``source:t<tid>:op#<i>`` locations.  All findings are warnings: they are
performance hazards, not correctness bugs — ``--strict`` escalates them.

Threads are treated as processors (the machine's default of one context
per processor); with multiple contexts per processor, co-resident
threads share a cache and the false-sharing pairs between them are
pessimistic.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.executor import LogicalExecutor, OpListener
from repro.analysis.oplint import WARNING, LintIssue
from repro.memlayout import SharedMemoryAllocator
from repro.tango import ops as O


class LayoutLinter(OpListener):
    """Listener that collects layout/prefetch findings from one run."""

    def __init__(
        self,
        line_bytes: int = 16,
        prefetch_depth: int = 16,
        source: str = "<ops>",
    ) -> None:
        if line_bytes <= 0 or prefetch_depth <= 0:
            raise ValueError("line_bytes and prefetch_depth must be positive")
        self.line_bytes = line_bytes
        self.prefetch_depth = prefetch_depth
        self.source = source
        self.issues: List[LintIssue] = []
        self._allocator: Optional[SharedMemoryAllocator] = None
        #: line -> tid -> set of written addrs in that line.
        self._writers: Dict[int, Dict[int, Set[int]]] = {}
        #: (line, tid) -> op index of the thread's first write to it.
        self._first_write: Dict[Tuple[int, int], int] = {}
        #: tid -> line -> (op index, prefetch counter at issue).
        self._pending: Dict[int, Dict[int, Tuple[int, int]]] = {}
        #: tid -> prefetches issued so far (window position).
        self._pf_count: Dict[int, int] = {}

    # -- helpers -------------------------------------------------------------

    def _line_of(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def _where(self, addr: int) -> str:
        if self._allocator is not None:
            region = self._allocator.region_of(addr)
            if region is not None:
                return f"{region.name}+{addr - region.base:#x}"
        return f"{addr:#x}"

    def _warn(self, thread: int, index: int, code: str, message: str) -> None:
        self.issues.append(
            LintIssue(WARNING, thread, index, code, message, source=self.source)
        )

    # -- listener hooks ------------------------------------------------------

    def on_start(
        self, allocator: SharedMemoryAllocator, num_processes: int
    ) -> None:
        self._allocator = allocator

    def on_op(self, thread: int, index: int, op: tuple) -> None:
        # PREFETCH never reaches the executor's interpreter (it is
        # timing-only), so it must be caught here.
        if not isinstance(op, tuple) or not op or op[0] != O.PREFETCH:
            return
        if len(op) < 2 or not isinstance(op[1], int) or isinstance(op[1], bool):
            return  # structurally broken; oplint's territory
        line = self._line_of(op[1])
        pending = self._pending.setdefault(thread, {})
        count = self._pf_count.get(thread, 0)
        if line in pending:
            first_index, _ = pending[line]
            self._warn(
                thread, index, "redundant-prefetch",
                f"line {line:#x} ({self._where(op[1])}) re-prefetched "
                f"before the prefetch at op#{first_index} was consumed",
            )
        else:
            pending[line] = (index, count)
        self._pf_count[thread] = count + 1

    def _consume(self, thread: int, index: int, addr: int) -> None:
        pending = self._pending.get(thread)
        if not pending:
            return
        line = self._line_of(addr)
        entry = pending.pop(line, None)
        if entry is None:
            return
        pf_index, at_issue = entry
        intervening = self._pf_count.get(thread, 0) - at_issue - 1
        if intervening >= self.prefetch_depth:
            self._warn(
                thread, pf_index, "prefetch-capacity-window",
                f"{intervening} later prefetches issued before line "
                f"{line:#x} ({self._where(addr)}) was first used at "
                f"op#{index}; the {self.prefetch_depth}-entry prefetch "
                f"buffer displaces the entry before it can be consumed",
            )

    def on_read(self, thread: int, index: int, addr: int) -> None:
        self._consume(thread, index, addr)

    def on_write(self, thread: int, index: int, addr: int) -> None:
        self._consume(thread, index, addr)
        line = self._line_of(addr)
        self._writers.setdefault(line, {}).setdefault(thread, set()).add(addr)
        self._first_write.setdefault((line, thread), index)

    def on_thread_done(self, thread: int) -> None:
        for line, (pf_index, _) in sorted(
            self._pending.pop(thread, {}).items()
        ):
            self._warn(
                thread, pf_index, "prefetch-never-used",
                f"line {line:#x} ({self._where(line)}) prefetched but "
                f"never read or written by this thread (pure overhead)",
            )

    def on_finish(self) -> None:
        for line in sorted(self._writers):
            by_tid = self._writers[line]
            if len(by_tid) < 2:
                continue
            addr_writers: Dict[int, Set[int]] = {}
            for tid, addrs in by_tid.items():
                for addr in addrs:
                    addr_writers.setdefault(addr, set()).add(tid)
            if any(len(tids) > 1 for tids in addr_writers.values()):
                continue  # true sharing: the line carries real communication
            tids = sorted(by_tid)
            first_tid = tids[0]
            sites = ", ".join(
                f"t{tid}:op#{self._first_write[(line, tid)]}" for tid in tids
            )
            self._warn(
                first_tid, self._first_write[(line, first_tid)],
                "false-sharing",
                f"line {line:#x} ({self._where(line)}) is written by "
                f"threads {tids} at disjoint addresses (first writes: "
                f"{sites}); every write invalidates the others' copies "
                f"without communicating data",
            )

    # -- reporting -----------------------------------------------------------

    @property
    def warnings(self) -> List[LintIssue]:
        return [i for i in self.issues if i.severity == WARNING]

    def failures(self, strict: bool = False) -> List[LintIssue]:
        """Layout findings are warnings; they fail only under --strict."""
        return list(self.issues) if strict else [
            i for i in self.issues if i.severity != WARNING
        ]

    def format_issues(self) -> str:
        if not self.issues:
            return "layout lint: clean"
        lines = [f"layout lint: {len(self.issues)} issue(s):"]
        lines.extend(f"  {issue}" for issue in self.issues)
        return "\n".join(lines)


#: Known findings per (app, prefetching) for the bundled applications at
#: the ``smoke`` scale with the registry's 8 processes.  The logical
#: executor schedules threads deterministically, so these counts are
#: stable; the CI gate fails on any drift (new findings, or stale
#: baselines after a layout fix) so changes are always deliberate.
APP_BASELINE: Dict[Tuple[str, bool], Dict[str, int]] = {
    ("MP3D", False): {},
    ("MP3D", True): {
        "redundant-prefetch": 304,
        "prefetch-capacity-window": 38,
        "prefetch-never-used": 132,
    },
    ("LU", False): {},
    ("LU", True): {},
    ("PTHOR", False): {"false-sharing": 25},
    ("PTHOR", True): {
        "false-sharing": 32,
        "redundant-prefetch": 7,
        "prefetch-capacity-window": 4,
        "prefetch-never-used": 28,
    },
}


def check_app_baselines() -> Tuple[bool, List[str]]:
    """Lint every bundled app (smoke scale, with and without prefetch)
    and compare per-code finding counts against :data:`APP_BASELINE`.

    Returns ``(ok, report_lines)``; any drift from the baseline fails.
    """
    from repro.experiments.registry import SMOKE_PROCESSES, smoke_program

    ok = True
    lines: List[str] = []
    for (app, prefetching), expected in APP_BASELINE.items():
        issues = lint_layout(
            smoke_program(app, prefetching=prefetching), SMOKE_PROCESSES
        )
        observed: Dict[str, int] = {}
        for issue in issues:
            observed[issue.code] = observed.get(issue.code, 0) + 1
        label = f"{app}+prefetch" if prefetching else app
        if observed == expected:
            lines.append(
                f"  {label}: {sum(observed.values())} known finding(s), none new"
            )
        else:
            ok = False
            lines.append(f"  {label}: findings drifted from baseline:")
            for code in sorted(set(observed) | set(expected)):
                lines.append(
                    f"    {code}: {observed.get(code, 0)} "
                    f"(baseline {expected.get(code, 0)})"
                )
    return ok, lines


def lint_layout(
    program,
    num_processes: int,
    line_bytes: int = 16,
    prefetch_depth: int = 16,
    **kwargs,
) -> List[LintIssue]:
    """Execute ``program`` logically and lint its memory layout and
    prefetch placement.  ``line_bytes``/``prefetch_depth`` default to
    the DASH machine's 16-byte lines and 16-entry prefetch buffer."""
    linter = LayoutLinter(
        line_bytes=line_bytes, prefetch_depth=prefetch_depth,
        source=program.name,
    )
    kwargs.setdefault("strict", False)
    executor = LogicalExecutor(
        program, num_processes, listeners=[linter], **kwargs
    )
    executor.run()
    return linter.issues
