"""Static lint for Tango op streams.

Applications communicate with the machine only through tuples from the
small vocabulary in :mod:`repro.tango.ops`, and a malformed tuple fails
deep inside the processor model with an unhelpful ``IndexError`` — or
worse, silently simulates the wrong program (a BARRIER whose declared
participant count exceeds the process count deadlocks; mismatched
counts at the same barrier address corrupt episodes).  The linter
validates each op structurally and tracks per-thread LOCK/UNLOCK
pairing and cross-thread barrier agreement, producing
:class:`LintIssue` records instead of crashes.

Use :func:`lint_ops` for a plain iterable of ops, the
:class:`OpLinter` listener to lint a live executor run, or
:func:`lint_program` to unroll a whole :class:`~repro.tango.Program`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.executor import LogicalExecutor, OpListener
from repro.memlayout import SharedMemoryAllocator
from repro.tango import ops as O

ERROR = "error"
WARNING = "warning"

#: Expected tuple arity per opcode (opcode itself included).
_ARITY = {
    O.BUSY: 2,
    O.READ: 2,
    O.WRITE: 2,
    O.PREFETCH: 3,
    O.LOCK: 2,
    O.UNLOCK: 2,
    O.FLAG_WAIT: 2,
    O.FLAG_SET: 2,
    O.BARRIER: 3,
}

_ADDR_OPS = frozenset(
    (O.READ, O.WRITE, O.PREFETCH, O.LOCK, O.UNLOCK,
     O.FLAG_WAIT, O.FLAG_SET, O.BARRIER)
)


@dataclass(frozen=True)
class LintIssue:
    """One finding: ``severity`` is ``"error"`` or ``"warning"``."""

    severity: str
    thread: int
    op_index: int
    code: str
    message: str
    #: Where the op stream came from (program name, or a caller-chosen
    #: label); part of the stable ``source:t<thread>:op#<index>``
    #: location format that tooling may parse.
    source: str = "<ops>"

    @property
    def location(self) -> str:
        """Stable machine-parseable location: ``source:t<tid>:op#<i>``
        (``op#-1`` marks end-of-stream findings such as a lock still
        held when the thread finishes)."""
        return f"{self.source}:t{self.thread}:op#{self.op_index}"

    def __str__(self) -> str:
        return f"[{self.severity}] {self.location} {self.code}: {self.message}"


class OpLinter(OpListener):
    """Listener that lints every op the executor delivers."""

    def __init__(
        self, num_processes: int = 0,
        allocator: Optional[SharedMemoryAllocator] = None,
        source: str = "<ops>",
    ) -> None:
        self.issues: List[LintIssue] = []
        self.source = source
        self.num_processes = num_processes
        self._allocator = allocator
        self._held: Dict[int, List[int]] = {}  # tid -> stack of lock addrs
        self._barrier_counts: Dict[int, int] = {}  # addr -> first count seen
        self._flags_set: Set[int] = set()
        self._flags_waited: Dict[int, LintIssue] = {}

    # -- listener hooks ------------------------------------------------------

    def on_start(
        self, allocator: SharedMemoryAllocator, num_processes: int
    ) -> None:
        self._allocator = allocator
        self.num_processes = num_processes

    def on_op(self, thread: int, index: int, op: tuple) -> None:
        self.lint_one(thread, index, op)

    def on_thread_done(self, thread: int) -> None:
        for addr in self._held.get(thread, ()):
            self._issue(
                ERROR, thread, -1, "lock-left-held",
                f"thread finished still holding lock {addr:#x}",
            )
        self._held.pop(thread, None)

    def on_finish(self) -> None:
        for addr, issue in self._flags_waited.items():
            if addr not in self._flags_set:
                self.issues.append(issue)

    # -- per-op validation ---------------------------------------------------

    def lint_one(self, thread: int, index: int, op) -> None:
        if not isinstance(op, tuple):
            self._issue(
                ERROR, thread, index, "not-a-tuple",
                f"yielded {type(op).__name__} {op!r}, expected an op tuple",
            )
            return
        if not op:
            self._issue(ERROR, thread, index, "empty-op", "empty tuple")
            return
        code = op[0]
        arity = _ARITY.get(code)
        if arity is None:
            self._issue(
                ERROR, thread, index, "unknown-opcode",
                f"opcode {code!r} is not in the Tango vocabulary",
            )
            return
        name = O.OPCODE_NAMES[code]
        if len(op) != arity:
            self._issue(
                ERROR, thread, index, "bad-arity",
                f"{name} takes {arity - 1} operand(s), got {len(op) - 1}",
            )
            return
        if code == O.BUSY:
            cycles = op[1]
            if not isinstance(cycles, int) or isinstance(cycles, bool) \
                    or cycles < 0:
                self._issue(
                    ERROR, thread, index, "bad-operand",
                    f"BUSY cycle count must be a nonnegative int, "
                    f"got {cycles!r}",
                )
            return
        addr = op[1]
        if not isinstance(addr, int) or isinstance(addr, bool) or addr < 0:
            self._issue(
                ERROR, thread, index, "bad-operand",
                f"{name} address must be a nonnegative int, got {addr!r}",
            )
            return
        if self._allocator is not None and code in _ADDR_OPS:
            if self._allocator.region_of(addr) is None:
                self._issue(
                    ERROR, thread, index, "unmapped-addr",
                    f"{name} targets {addr:#x}, which is outside every "
                    f"allocated region",
                )
        if code == O.PREFETCH:
            exclusive = op[2]
            if not isinstance(exclusive, bool):
                self._issue(
                    ERROR, thread, index, "bad-operand",
                    f"PREFETCH exclusive flag must be a bool, "
                    f"got {exclusive!r}",
                )
            return
        if code == O.LOCK:
            held = self._held.setdefault(thread, [])
            if addr in held:
                self._issue(
                    ERROR, thread, index, "recursive-lock",
                    f"LOCK {addr:#x} while already holding it "
                    f"(locks are not reentrant; this self-deadlocks)",
                )
            held.append(addr)
            return
        if code == O.UNLOCK:
            held = self._held.setdefault(thread, [])
            if addr not in held:
                self._issue(
                    ERROR, thread, index, "unlock-without-lock",
                    f"UNLOCK {addr:#x} without a matching LOCK in this "
                    f"thread",
                )
            else:
                held.remove(addr)
            return
        if code == O.FLAG_SET:
            self._flags_set.add(addr)
            return
        if code == O.FLAG_WAIT:
            if addr not in self._flags_set and addr not in self._flags_waited:
                # Deferred: only reported if no thread ever sets the flag.
                self._flags_waited[addr] = LintIssue(
                    ERROR, thread, index, "flag-never-set",
                    f"FLAG_WAIT on {addr:#x} but no thread ever issues "
                    f"FLAG_SET for it",
                    source=self.source,
                )
            return
        if code == O.BARRIER:
            participants = op[2]
            if not isinstance(participants, int) \
                    or isinstance(participants, bool) or participants <= 0:
                self._issue(
                    ERROR, thread, index, "bad-operand",
                    f"BARRIER participant count must be a positive int, "
                    f"got {participants!r}",
                )
                return
            if self.num_processes and participants > self.num_processes:
                self._issue(
                    ERROR, thread, index, "barrier-overcommit",
                    f"BARRIER {addr:#x} declares {participants} "
                    f"participants but only {self.num_processes} "
                    f"process(es) exist (guaranteed deadlock)",
                )
            first = self._barrier_counts.setdefault(addr, participants)
            if first != participants:
                self._issue(
                    ERROR, thread, index, "barrier-mismatch",
                    f"BARRIER {addr:#x} declares {participants} "
                    f"participants; other ops declared {first}",
                )
            return

    # -- helpers -------------------------------------------------------------

    def _issue(
        self, severity: str, thread: int, index: int, code: str, message: str
    ) -> None:
        self.issues.append(
            LintIssue(severity, thread, index, code, message,
                      source=self.source)
        )

    @property
    def errors(self) -> List[LintIssue]:
        return [i for i in self.issues if i.severity == ERROR]

    @property
    def warnings(self) -> List[LintIssue]:
        return [i for i in self.issues if i.severity == WARNING]

    def failures(self, strict: bool = False) -> List[LintIssue]:
        """Issues that should fail a check: errors, plus warnings when
        ``strict`` (the CI mode — ``repro-1991 check --strict``)."""
        return list(self.issues) if strict else self.errors

    def format_issues(self) -> str:
        if not self.issues:
            return "op-stream lint: clean"
        lines = [f"op-stream lint: {len(self.issues)} issue(s):"]
        lines.extend(f"  {issue}" for issue in self.issues)
        return "\n".join(lines)


def lint_ops(
    ops: Iterable,
    thread: int = 0,
    num_processes: int = 0,
    allocator: Optional[SharedMemoryAllocator] = None,
    source: str = "<ops>",
) -> List[LintIssue]:
    """Lint a plain iterable of op tuples from one thread."""
    linter = OpLinter(num_processes=num_processes, allocator=allocator,
                      source=source)
    index = -1
    for index, op in enumerate(ops):
        linter.lint_one(thread, index, op)
    linter.on_thread_done(thread)
    linter.on_finish()
    return linter.issues


def lint_program(program, num_processes: int, **kwargs) -> List[LintIssue]:
    """Execute ``program`` logically and lint its full op streams.

    Runs non-strict so the linter records malformed ops rather than the
    executor raising on them.
    """
    linter = OpLinter(source=program.name)
    executor = LogicalExecutor(
        program, num_processes, listeners=[linter], strict=False, **kwargs
    )
    executor.run()
    return linter.issues
