"""Runtime coherence invariant sanitizer.

:class:`CoherenceSanitizer` instruments a built
:class:`~repro.system.machine.Machine` so that every protocol
transaction is followed by invariant checks over the state it touched:

* **SWMR** — at most one secondary cache holds the line dirty, and a
  dirty copy excludes all other cached copies;
* **inclusion** — a line resident in a primary cache is resident in the
  same node's secondary cache;
* **directory precision** — the home directory entry's state/sharers/
  owner agree exactly with the caches (the directory is notified on
  every replacement, so it is supposed to be exact, not conservative);
* **buffer bounds** — write-buffer and prefetch-buffer occupancy never
  exceed their configured depths, buffered retire times stay monotone,
  and MSHR entries never complete before they issue.

Violations raise :class:`~repro.sim.engine.SimulationError` carrying a
trace of the most recent transactions so the offending sequence can be
reconstructed.  Instrumentation is installed by rebinding *instance*
attributes on the protocol and memory interfaces — a machine without the
sanitizer runs the original bound methods with zero added work, which is
what keeps the default configuration's performance unchanged.

Enable via ``MachineConfig(sanitize=True)`` or construct directly::

    machine = Machine(config.replace(sanitize=True))

The per-transaction check visits only the accessed line plus the issuing
node's buffers (O(nodes) per access); :meth:`check_machine` runs the
full-state sweep from
:meth:`~repro.coherence.protocol.CoherenceProtocol.check_invariants`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.caches import LineState
from repro.coherence import AccessOutcome
from repro.coherence.directory import DirState
from repro.sim.engine import SimulationError


@dataclass(frozen=True)
class Transition:
    """One recorded protocol transaction."""

    time: int
    node: int
    kind: str
    addr: int
    retire: int
    complete: int
    access_class: str

    def __str__(self) -> str:
        return (
            f"t={self.time:<8d} node {self.node:<2d} {self.kind:<14s} "
            f"addr={self.addr:#x} -> {self.access_class} "
            f"retire={self.retire} complete={self.complete}"
        )


class TransitionTrace:
    """Ring buffer of the most recent transitions."""

    def __init__(self, depth: int = 64) -> None:
        self._entries: Deque[Transition] = deque(maxlen=depth)

    def record(self, transition: Transition) -> None:
        self._entries.append(transition)

    def __len__(self) -> int:
        return len(self._entries)

    def format(self) -> str:
        if not self._entries:
            return "  (no transitions recorded)"
        return "\n".join(f"  {t}" for t in self._entries)


class CoherenceSanitizer:
    """Per-transaction invariant checking for one machine."""

    def __init__(self, machine, trace_depth: int = 64) -> None:
        self.machine = machine
        self.protocol = machine.protocol
        self.trace = TransitionTrace(trace_depth)
        self.checks_performed = 0
        self._installed = False
        self._saved = []

    # -- instrumentation ------------------------------------------------------

    def install(self) -> "CoherenceSanitizer":
        """Wrap the protocol's and memory interfaces' entry points."""
        if self._installed:
            return self
        protocol = self.protocol
        self._wrap_protocol(protocol, "read", "read")
        self._wrap_protocol(protocol, "write", "write")
        self._wrap_protocol(protocol, "read_uncached", "read_uncached")
        self._wrap_protocol(protocol, "write_uncached", "write_uncached")
        self._wrap_prefetch(protocol)
        for iface in self.machine.memifaces:
            self._wrap_iface(iface)
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Restore the original bound methods."""
        for obj, name in self._saved:
            try:
                delattr(obj, name)
            except AttributeError:
                pass
        self._saved.clear()
        self._installed = False

    def _wrap_protocol(self, protocol, name: str, kind: str) -> None:
        original = getattr(protocol, name)
        sanitizer = self

        def wrapper(node, addr, time, **kwargs):
            outcome = original(node, addr, time, **kwargs)
            sanitizer._record(time, node, kind, addr, outcome)
            sanitizer.check_line(protocol.line_of(addr))
            return outcome

        setattr(protocol, name, wrapper)
        self._saved.append((protocol, name))

    def _wrap_prefetch(self, protocol) -> None:
        original = protocol.prefetch
        sanitizer = self

        def wrapper(node, addr, exclusive, time):
            outcome = original(node, addr, exclusive, time)
            kind = "prefetch-excl" if exclusive else "prefetch"
            sanitizer._record(time, node, kind, addr, outcome)
            sanitizer.check_line(protocol.line_of(addr))
            return outcome

        protocol.prefetch = wrapper
        self._saved.append((protocol, "prefetch"))

    def _wrap_iface(self, iface) -> None:
        sanitizer = self
        for name in ("read", "write", "prefetch"):
            original = getattr(iface, name)

            def wrapper(*args, _original=original, _iface=iface, **kwargs):
                result = _original(*args, **kwargs)
                sanitizer.check_buffers(_iface)
                return result

            setattr(iface, name, wrapper)
            self._saved.append((iface, name))

    def _record(
        self, time: int, node: int, kind: str, addr: int,
        outcome: Optional[AccessOutcome],
    ) -> None:
        if outcome is None:  # discarded prefetch
            self.trace.record(
                Transition(time, node, kind + "-drop", addr, time, time, "-")
            )
            return
        self.trace.record(
            Transition(
                time, node, kind, addr,
                outcome.retire, outcome.complete,
                outcome.access_class.value,
            )
        )

    # -- checks ---------------------------------------------------------------

    def check_line(self, line: int) -> None:
        """Validate SWMR, inclusion, and directory precision for ``line``."""
        self.checks_performed += 1
        caches = self.protocol.caches
        #: Owner-capable cache states per the active spec (M under MSI;
        #: M or E under MESI) — the states the directory's DIRTY entry
        #: must name the holder of.
        owner_states = self.protocol.spec.owner_states
        holders = set()
        dirty_holder = None
        for node, node_caches in enumerate(caches):
            state = node_caches.secondary.probe(line)
            if state == LineState.INVALID:
                if node_caches.primary.probe(line) != LineState.INVALID:
                    self._fail(
                        f"inclusion violated: line {line:#x} in primary but "
                        f"not secondary cache of node {node}"
                    )
                continue
            holders.add(node)
            if state in owner_states:
                if dirty_holder is not None:
                    self._fail(
                        f"SWMR violated: line {line:#x} exclusive/dirty at "
                        f"nodes {dirty_holder} and {node}"
                    )
                dirty_holder = node
        if dirty_holder is not None and holders != {dirty_holder}:
            self._fail(
                f"SWMR violated: line {line:#x} dirty at node "
                f"{dirty_holder} while cached by {sorted(holders)}"
            )

        home = self.protocol.home_of(line)
        entry = self.protocol.directories[home].peek(line)
        if entry is None:
            if holders:
                self._fail(
                    f"directory imprecise: line {line:#x} has no entry at "
                    f"home {home} but is cached by {sorted(holders)}"
                )
            return
        try:
            entry.check()
        except SimulationError as exc:  # srclint: ok(swallow-simulation-error) — _fail re-raises
            self._fail(f"line {line:#x} at home {home}: {exc}")
        if entry.state == DirState.DIRTY:
            if holders != {entry.owner}:
                self._fail(
                    f"directory imprecise: line {line:#x} DIRTY with owner "
                    f"{entry.owner} but cached by {sorted(holders)}"
                )
            if dirty_holder != entry.owner:
                self._fail(
                    f"directory imprecise: line {line:#x} owner "
                    f"{entry.owner} holds it in state "
                    f"{caches[entry.owner].secondary.probe(line).name}"
                )
        elif entry.state == DirState.SHARED:
            if dirty_holder is not None:
                self._fail(
                    f"directory imprecise: line {line:#x} SHARED but dirty "
                    f"at node {dirty_holder}"
                )
            if holders != entry.sharers:
                self._fail(
                    f"directory imprecise: line {line:#x} sharers "
                    f"{sorted(entry.sharers)} but cached by {sorted(holders)}"
                )
        else:
            if holders:
                self._fail(
                    f"directory imprecise: line {line:#x} UNOWNED but "
                    f"cached by {sorted(holders)}"
                )

    def check_buffers(self, iface) -> None:
        """Validate buffer occupancy bounds and ordering for one node."""
        self.checks_performed += 1
        config = self.machine.config
        depth = config.write_buffer_depth
        retires = iface._wb_retires
        if len(retires) > depth:
            self._fail(
                f"node {iface.node}: write buffer holds {len(retires)} "
                f"entries, depth is {depth}"
            )
        previous = None
        for retire in retires:
            if previous is not None and retire < previous:
                self._fail(
                    f"node {iface.node}: write buffer retire times not "
                    f"monotone ({retire} after {previous}) — FIFO order "
                    f"violated"
                )
            previous = retire
        if len(iface._pf_queue) > config.prefetch_buffer_depth:
            self._fail(
                f"node {iface.node}: prefetch buffer holds "
                f"{len(iface._pf_queue)} entries, depth is "
                f"{config.prefetch_buffer_depth}"
            )
        for line in iface.mshr.outstanding_lines():
            miss = iface.mshr.lookup(line)
            if miss is not None and miss.complete_time < miss.issue_time:
                self._fail(
                    f"node {iface.node}: MSHR entry for line {line:#x} "
                    f"completes at {miss.complete_time}, before its issue "
                    f"time {miss.issue_time}"
                )

    def check_machine(self) -> None:
        """Full-state sweep over every cache, directory, and buffer."""
        self.checks_performed += 1
        try:
            self.protocol.check_invariants()
        except SimulationError as exc:  # srclint: ok(swallow-simulation-error) — _fail re-raises
            self._fail(str(exc))
        for iface in self.machine.memifaces:
            self.check_buffers(iface)
        self.check_counters()

    def check_counters(self) -> None:
        """Event counters are monotone: a negative value means counter
        state leaked between runs or a decrement snuck in."""
        self.checks_performed += 1
        for name, value in self.protocol.stats.counter_items():
            if value < 0:
                self._fail(f"protocol counter {name} is negative ({value})")
        for directory in self.protocol.directories:
            if directory.nacks_sent < 0:
                self._fail(
                    f"directory {directory.node_id} nacks_sent is "
                    f"negative ({directory.nacks_sent})"
                )

    def _fail(self, message: str) -> None:
        raise SimulationError(
            f"coherence invariant violated: {message}\n"
            f"transition trace (most recent last):\n{self.trace.format()}"
        )
