"""Vector clocks for happens-before tracking.

A vector clock maps thread ids to logical epochs.  Thread ``t``'s clock
``C_t`` summarizes everything that happens-before ``t``'s next action;
synchronization objects carry their own clocks that are joined into an
acquiring thread's clock (the standard Mattern/Fidge construction, as
used by dynamic race detectors in the FastTrack family).

An *epoch* ``(t, c)`` names one event: the ``c``-th increment of thread
``t``.  Epoch ``(t, c)`` happens-before a clock ``C`` iff ``c <=
C[t]`` — the constant-time test that keeps per-address race checks
cheap.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

#: One event: (thread id, that thread's clock component at the event).
Epoch = Tuple[int, int]


class VectorClock:
    """A mutable vector clock over integer thread ids."""

    __slots__ = ("_clock",)

    def __init__(self, clock: Optional[Dict[int, int]] = None) -> None:
        self._clock: Dict[int, int] = dict(clock) if clock else {}

    def copy(self) -> "VectorClock":
        return VectorClock(self._clock)

    def get(self, thread: int) -> int:
        return self._clock.get(thread, 0)

    def tick(self, thread: int) -> Epoch:
        """Advance ``thread``'s component; return the new epoch."""
        value = self._clock.get(thread, 0) + 1
        self._clock[thread] = value
        return (thread, value)

    def epoch(self, thread: int) -> Epoch:
        """The current epoch of ``thread`` under this clock."""
        return (thread, self._clock.get(thread, 0))

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum: absorb everything ``other`` has seen."""
        clock = self._clock
        for thread, value in other._clock.items():
            if value > clock.get(thread, 0):
                clock[thread] = value

    def dominates_epoch(self, epoch: Epoch) -> bool:
        """True iff the event named by ``epoch`` happens-before this
        clock (``epoch.value <= self[epoch.thread]``)."""
        thread, value = epoch
        return value <= self._clock.get(thread, 0)

    def items(self) -> Iterable[Tuple[int, int]]:
        return self._clock.items()

    def __le__(self, other: "VectorClock") -> bool:
        return all(v <= other.get(t) for t, v in self._clock.items())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        threads = set(self._clock) | set(other._clock)
        return all(self.get(t) == other.get(t) for t in threads)

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}:{v}" for t, v in sorted(self._clock.items()))
        return f"VC({inner})"


def join_all(clocks: Iterable[VectorClock]) -> VectorClock:
    """Pointwise maximum of several clocks (barrier release)."""
    merged = VectorClock()
    for clock in clocks:
        merged.join(clock)
    return merged
