"""AST-based determinism lint for the simulator's own source.

The simulator's contract is bit-for-bit reproducibility: the same
(program, config, seed) triple must produce the same result on every
run, machine, and Python version.  The classic ways that contract rots
are all statically visible, so this pass walks the AST of every module
under ``src/repro`` and enforces:

* ``unseeded-random`` — no module-level :mod:`random` functions (they
  share hidden global state) and no ``random.Random()`` without a seed;
  all randomness must flow from an explicitly seeded instance;
* ``wall-clock`` — no reads of wall-clock time (``time.time``,
  ``time.monotonic``, ``time.perf_counter``, ``datetime.now``, ...)
  outside ``faults/watchdog.py``, whose whole job is wall-clock
  watchdogging.  Wall time leaking anywhere else can steer simulated
  behaviour by host load;
* ``set-iteration`` — no iteration directly over a set display,
  ``set(...)`` / ``frozenset(...)`` call, or set comprehension: set
  order is arbitrary (hash-seed dependent for str keys), so event
  handlers and protocol code must iterate ``sorted(...)`` instead;
* ``mutable-default`` — no mutable default arguments (``[]``, ``{}``,
  ``set()``, ...): state smuggled between calls through a default is
  both a correctness bug and a cross-run leak;
* ``swallow-simulation-error`` — an ``except`` handler that catches
  :class:`~repro.sim.engine.SimulationError` (directly, via
  ``Exception``, or bare) must contain a ``raise``: invariant
  violations must never be silently dropped by event callbacks.

Two further rules guard the *hot path* (performance, not determinism —
the simulator allocates one object per event and per cache line, so
accidental dicts and per-iteration containers dominate profiles):

* ``missing-slots`` — classes under ``sim/``, ``caches/``, and
  ``coherence/`` (the per-event / per-line instance factories) must
  declare ``__slots__``.  Enums, NamedTuples, and exception classes are
  exempt (they are not bulk-instantiated or need no dict anyway);
  dataclasses with field defaults cannot take ``__slots__`` on the
  Python 3.9 CI floor and carry acknowledgements instead;
* ``loop-allocation`` — no container literals, comprehensions, lambdas,
  or ``list()``/``dict()``/... constructor calls inside the loop bodies
  of the event engine's ``run`` / ``run_until``: the dispatch loop runs
  once per event and must not churn the allocator.

One rule guards the layering of the protocol spec registry:

* ``spec-purity`` — modules under ``coherence/specs/`` are pure data:
  consumed by the runtime protocol *and* by every static analyzer
  (model check, protolint, latbound, protodiff), so they must not
  import the runtime packages (``sim``, ``system``, ``processor``,
  ``experiments``) and must not call anything at module scope beyond
  the spec constructors (``make_spec``, ``ProtocolSpec``, ``Rule``,
  ``TransitionTable``) and the immutable containers they are built
  from.  A spec with side effects would make "statically verified"
  mean "verified against whatever the import happened to do".

One rule guards numeric soundness of the timing core:

* ``float-drift`` — in ``sim/`` (the event calendar and queued
  resources, where every quantity is an integer pclock count), no
  ``==`` / ``!=`` comparison involving a float expression (a float
  literal, a ``float(...)`` call, or a true division) and no in-place
  accumulation of one (``+=`` / ``-=`` / ``*=`` with a float operand,
  or ``/=`` anywhere): float rounding drifts with evaluation order, and
  simulated time must never inherit it.  Reporting-only ratios
  (returned, not stored back into timing state) are fine.

A finding may be acknowledged in place with a trailing
``# srclint: ok(<rule>)`` comment on the offending line (the
crash-isolation boundary in the experiment supervisor, for example,
exists to swallow errors).  Acknowledgements that no longer suppress
anything — the offending code was fixed or moved, the comment stayed —
are themselves reported as ``dead-ack`` *warnings*, so stale
suppressions cannot quietly mask a future regression on the same line;
``--strict`` escalates them to failures.  The lint runs from
``repro-1991 check --lint-src`` and CI, and must stay clean on
``src/repro``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

#: Module-level :mod:`random` callables that use the hidden global RNG.
#: (Seeding the global RNG via ``random.seed`` is equally banned: the
#: stream is process-wide and any import-order change perturbs it.)
_GLOBAL_RNG_EXEMPT = {"Random", "SystemRandom"}

#: Wall-clock reading callables of :mod:`time`.
_TIME_FNS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
    "localtime", "gmtime",
}

#: Wall-clock reading constructors of :mod:`datetime` classes.
_DATETIME_FNS = {"now", "utcnow", "today"}

#: Exception names whose handlers can swallow a SimulationError.
_SWALLOWING_CATCHES = {"SimulationError", "Exception", "BaseException"}

#: Files allowed to read the wall clock: the watchdog *is* the wall
#: clock boundary (its readings feed abort decisions, never sim state).
_WALL_CLOCK_ALLOWED = ("faults/watchdog.py",)

#: Package subtrees whose classes are instantiated per event or per
#: cache line — the ``missing-slots`` rule's scope.
_HOT_PATH_DIRS = ("sim/", "caches/", "coherence/")

#: Base classes that exempt a class from ``missing-slots``: enums and
#: NamedTuples manage their own storage, Protocols are not instantiated.
_SLOTS_EXEMPT_BASES = {
    "Enum", "IntEnum", "IntFlag", "Flag", "NamedTuple", "Protocol",
}

#: Event-engine dispatch loops guarded by ``loop-allocation``.
_EVENT_LOOP_FNS = {"run", "run_until"}

#: Scope of the ``spec-purity`` rule: the protocol spec registry.
_SPEC_DIR = "coherence/specs/"

#: Runtime packages a protocol spec must never import: specs feed both
#: the runtime and the static analyzers, so reaching into the simulator
#: from a spec would invert the layering.
_SPEC_FORBIDDEN_IMPORTS = (
    "repro.sim", "repro.system", "repro.processor", "repro.experiments",
)

#: Call targets a spec module may invoke at module scope: the spec
#: constructors and the immutable containers specs are built from.
_SPEC_ALLOWED_CALLS = {
    "make_spec", "ProtocolSpec", "Rule", "TransitionTable",
    "frozenset", "tuple", "dict", "dataclass", "field",
}

#: Container constructors whose calls allocate inside the event loop.
_ALLOC_CALLS = {"list", "dict", "set", "tuple", "frozenset", "bytearray"}

_OK_COMMENT = re.compile(r"#\s*srclint:\s*ok(?:\(([a-z-]+)\))?")

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class SrcIssue:
    """One finding, anchored to a source location."""

    path: str        # repo-relative (posix) path
    line: int
    col: int
    rule: str
    message: str
    severity: str = ERROR

    def __str__(self) -> str:
        tag = f" {self.severity}:" if self.severity != ERROR else ""
        return (
            f"{self.path}:{self.line}:{self.col} [{self.rule}]{tag} "
            f"{self.message}"
        )


class _Visitor(ast.NodeVisitor):
    def __init__(
        self, rel_path: str, source_lines: Sequence[str]
    ) -> None:
        self.rel_path = rel_path
        self.source_lines = source_lines
        self.issues: List[SrcIssue] = []
        #: local alias -> real module name, for ``random`` and ``time``.
        self.module_aliases: Dict[str, str] = {}
        #: names bound by ``from datetime import datetime/date``.
        self.datetime_names: Set[str] = set()
        #: line numbers whose ack comment suppressed at least one finding.
        self.used_acks: Set[int] = set()
        #: function/lambda nesting depth — 0 means the code runs at
        #: module import time (the ``spec-purity`` scope).
        self._func_depth = 0

    # -- helpers -----------------------------------------------------------

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if self._acknowledged(line, rule):
            return
        self.issues.append(
            SrcIssue(
                self.rel_path, line, getattr(node, "col_offset", 0) + 1,
                rule, message,
            )
        )

    def _acknowledged(self, line: int, rule: str) -> bool:
        if not 1 <= line <= len(self.source_lines):
            return False
        match = _OK_COMMENT.search(self.source_lines[line - 1])
        if match is None:
            return False
        if match.group(1) is None or match.group(1) == rule:
            self.used_acks.add(line)
            return True
        return False

    def _alias_of(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self.module_aliases.get(node.id)
        return None

    # -- imports -----------------------------------------------------------

    def _check_spec_import(self, node: ast.AST, module: str) -> None:
        if not self.rel_path.startswith(_SPEC_DIR):
            return
        for forbidden in _SPEC_FORBIDDEN_IMPORTS:
            if module == forbidden or module.startswith(forbidden + "."):
                self._flag(
                    node, "spec-purity",
                    f"protocol spec imports the runtime package "
                    f"{module!r}; specs are pure data shared by the "
                    f"runtime and every static analyzer and must not "
                    f"depend on the simulator",
                )
                return

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in ("random", "time", "datetime"):
                self.module_aliases[alias.asname or alias.name] = alias.name
            self._check_spec_import(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None:
            self._check_spec_import(node, node.module)
        if node.module == "random":
            # ``from random import randint`` severs the call site from
            # the module name, making seeding untrackable.
            for alias in node.names:
                if alias.name not in _GLOBAL_RNG_EXEMPT:
                    self._flag(
                        node, "unseeded-random",
                        f"'from random import {alias.name}' binds the "
                        f"hidden global RNG; import the module and use a "
                        f"seeded random.Random instance",
                    )
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date", "time"):
                    self.datetime_names.add(alias.asname or alias.name)
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_FNS:
                    self._flag(
                        node, "wall-clock",
                        f"'from time import {alias.name}' imports a "
                        f"wall-clock read",
                    )
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            self.rel_path.startswith(_SPEC_DIR)
            and self._func_depth == 0
        ):
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name not in _SPEC_ALLOWED_CALLS:
                self._flag(
                    node, "spec-purity",
                    f"module-scope call to {name or '<expression>'}() in "
                    f"a protocol spec runs side effects at import time; "
                    f"specs must only invoke the spec constructors "
                    f"({', '.join(sorted(_SPEC_ALLOWED_CALLS))})",
                )
        if isinstance(func, ast.Attribute):
            owner = self._alias_of(func.value)
            if owner == "random":
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        self._flag(
                            node, "unseeded-random",
                            "random.Random() without a seed draws entropy "
                            "from the OS; pass an explicit seed",
                        )
                elif func.attr not in _GLOBAL_RNG_EXEMPT:
                    self._flag(
                        node, "unseeded-random",
                        f"random.{func.attr}() uses the hidden global "
                        f"RNG; use an explicitly seeded random.Random",
                    )
            elif owner == "time" and func.attr in _TIME_FNS:
                self._flag(
                    node, "wall-clock",
                    f"time.{func.attr}() reads the wall clock",
                )
            elif func.attr in _DATETIME_FNS:
                base = func.value
                if (
                    isinstance(base, ast.Name)
                    and base.id in self.datetime_names
                ) or (
                    isinstance(base, ast.Attribute)
                    and self._alias_of(base.value) == "datetime"
                ):
                    self._flag(
                        node, "wall-clock",
                        f"datetime {func.attr}() reads the wall clock",
                    )
        self.generic_visit(node)

    # -- iteration over sets -----------------------------------------------

    def _check_iterable(self, iterable: ast.expr) -> None:
        unordered = None
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            unordered = "a set display"
        elif isinstance(iterable, ast.Call) and isinstance(
            iterable.func, ast.Name
        ) and iterable.func.id in ("set", "frozenset"):
            unordered = f"{iterable.func.id}(...)"
        if unordered is not None:
            self._flag(
                iterable, "set-iteration",
                f"iterating {unordered} visits elements in arbitrary "
                f"(hash-dependent) order; wrap it in sorted()",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehensions(self, node) -> None:
        for comp in node.generators:
            self._check_iterable(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehensions
    visit_SetComp = _visit_comprehensions
    visit_DictComp = _visit_comprehensions
    visit_GeneratorExp = _visit_comprehensions

    # -- float drift in timing code ----------------------------------------

    def _floatish(self, node: ast.expr) -> bool:
        """Syntactically float-valued: a float literal, ``float(...)``,
        a true division, or any expression containing one."""
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            return True
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.Div):
                return True
            return self._floatish(node.left) or self._floatish(node.right)
        if isinstance(node, ast.UnaryOp):
            return self._floatish(node.operand)
        return False

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.rel_path.startswith("sim/"):
            operands = [node.left] + list(node.comparators)
            if any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ) and any(self._floatish(operand) for operand in operands):
                self._flag(
                    node, "float-drift",
                    "exact equality against a float expression is "
                    "rounding-sensitive; simulated time is integer "
                    "pclocks — compare integers or use a tolerance",
                )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.rel_path.startswith("sim/"):
            if isinstance(node.op, ast.Div):
                self._flag(
                    node, "float-drift",
                    "in-place division turns timing state into a float "
                    "accumulator; keep pclock counts integral",
                )
            elif isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)
            ) and self._floatish(node.value):
                self._flag(
                    node, "float-drift",
                    "accumulating a float expression into timing state "
                    "drifts with evaluation order; keep pclock counts "
                    "integral",
                )
        self.generic_visit(node)

    # -- mutable defaults --------------------------------------------------

    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            mutable = None
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                mutable = "a mutable literal"
            elif isinstance(default, ast.Call) and isinstance(
                default.func, ast.Name
            ) and default.func.id in ("list", "dict", "set", "bytearray"):
                mutable = f"{default.func.id}()"
            if mutable is not None:
                self._flag(
                    default, "mutable-default",
                    f"default argument is {mutable}, shared across every "
                    f"call; use None and create it in the body",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        if (
            self.rel_path.startswith("sim/")
            and node.name in _EVENT_LOOP_FNS
        ):
            self._check_loop_allocations(node)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self._func_depth += 1
        self.generic_visit(node)
        self._func_depth -= 1

    # -- hot-path performance ----------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self.rel_path.startswith(_HOT_PATH_DIRS):
            self._check_slots(node)
        self.generic_visit(node)

    def _check_slots(self, node: ast.ClassDef) -> None:
        base_names = set()
        for base in node.bases:
            if isinstance(base, ast.Name):
                base_names.add(base.id)
            elif isinstance(base, ast.Attribute):
                base_names.add(base.attr)
        if base_names & _SLOTS_EXEMPT_BASES:
            return
        exc_suffixes = ("Error", "Exception", "Warning")
        if node.name.endswith(exc_suffixes) or any(
            name.endswith(exc_suffixes) for name in base_names
        ):
            return
        for stmt in node.body:
            if isinstance(stmt, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "__slots__"
                for target in stmt.targets
            ):
                return
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
            ):
                return
        self._flag(
            node, "missing-slots",
            f"class {node.name!r} lives on the per-event/per-line hot "
            f"path but declares no __slots__; every instance carries a "
            f"__dict__",
        )

    def _check_loop_allocations(self, func: ast.FunctionDef) -> None:
        flagged: Set[int] = set()
        for loop in ast.walk(func):
            if not isinstance(loop, (ast.While, ast.For)):
                continue
            for child in ast.walk(loop):
                if child is loop or id(child) in flagged:
                    continue
                alloc = None
                if isinstance(child, (ast.List, ast.Dict, ast.Set)):
                    alloc = "a container literal"
                elif isinstance(
                    child,
                    (ast.ListComp, ast.SetComp, ast.DictComp,
                     ast.GeneratorExp),
                ):
                    alloc = "a comprehension"
                elif isinstance(child, ast.Lambda):
                    alloc = "a lambda"
                elif (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Name)
                    and child.func.id in _ALLOC_CALLS
                ):
                    alloc = f"{child.func.id}()"
                if alloc is not None:
                    flagged.add(id(child))
                    self._flag(
                        child, "loop-allocation",
                        f"{alloc} is allocated inside the event-dispatch "
                        f"loop of {func.name}(); hoist it out of the "
                        f"per-event path",
                    )

    # -- swallowed SimulationError -----------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        caught = self._caught_names(node.type)
        if caught & _SWALLOWING_CATCHES or node.type is None:
            if not any(
                isinstance(child, ast.Raise) for child in ast.walk(node)
            ):
                what = ", ".join(sorted(caught)) if caught else "everything"
                self._flag(
                    node, "swallow-simulation-error",
                    f"handler catches {what} without re-raising; a "
                    f"SimulationError (invariant violation) would be "
                    f"silently dropped",
                )
        self.generic_visit(node)

    @staticmethod
    def _caught_names(node: Optional[ast.expr]) -> Set[str]:
        if node is None:
            return set()
        names: Set[str] = set()
        targets = node.elts if isinstance(node, ast.Tuple) else [node]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, ast.Attribute):
                names.add(target.attr)
        return names


def lint_source(source: str, rel_path: str) -> List[SrcIssue]:
    """Lint one module's source text (``rel_path`` is for reporting and
    the wall-clock allowlist)."""
    lines = source.splitlines()
    tree = ast.parse(source, filename=rel_path)
    visitor = _Visitor(rel_path, lines)
    visitor.visit(tree)
    issues = visitor.issues
    if rel_path.replace("\\", "/").endswith(_WALL_CLOCK_ALLOWED):
        issues = [i for i in issues if i.rule != "wall-clock"]
    issues.extend(_dead_acks(rel_path, lines, visitor.used_acks))
    return issues


def _dead_acks(
    rel_path: str, lines: Sequence[str], used: Set[int]
) -> List[SrcIssue]:
    """Explicit-rule ``srclint: ok(<rule>)`` comments that suppressed
    nothing.  Rule-less ``srclint: ok`` mentions (e.g. in docstrings
    describing the mechanism) are not flagged."""
    issues: List[SrcIssue] = []
    for lineno, text in enumerate(lines, start=1):
        if lineno in used:
            continue
        match = _OK_COMMENT.search(text)
        if match is None or match.group(1) is None:
            continue
        rule = match.group(1)
        issues.append(
            SrcIssue(
                rel_path, lineno, match.start() + 1, "dead-ack",
                f"'# srclint: ok({rule})' no longer suppresses any "
                f"{rule} finding on this line; remove the stale "
                f"acknowledgement",
                severity=WARNING,
            )
        )
    return issues


def failures(
    issues: Iterable[SrcIssue], strict: bool = False
) -> List[SrcIssue]:
    """The issues that should fail the check: errors always, warnings
    (currently only ``dead-ack``) under ``--strict``."""
    return [
        i for i in issues if strict or i.severity != WARNING
    ]


def lint_path(path: Path, root: Path) -> List[SrcIssue]:
    rel = path.relative_to(root).as_posix()
    return lint_source(path.read_text(encoding="utf-8"), rel)


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    import repro

    return Path(repro.__file__).resolve().parent


def lint_tree(root: Optional[Path] = None) -> List[SrcIssue]:
    """Lint every ``*.py`` under ``root`` (default: the repro package)."""
    root = Path(root) if root is not None else default_root()
    issues: List[SrcIssue] = []
    for path in sorted(root.rglob("*.py")):
        issues.extend(lint_path(path, root))
    return issues


def format_issues(issues: Iterable[SrcIssue]) -> str:
    issues = list(issues)
    if not issues:
        return "src lint: clean"
    lines = [f"src lint: {len(issues)} issue(s):"]
    lines.extend(f"  {issue}" for issue in issues)
    return "\n".join(lines)
