"""Machine configuration (architecture parameters, Table 1 latencies)."""

from repro.config.machine import (
    CacheGeometry,
    Consistency,
    ContentionConfig,
    LatencyTable,
    MachineConfig,
    PlacementPolicy,
    dash_full_config,
    dash_scaled_config,
)

__all__ = [
    "CacheGeometry",
    "Consistency",
    "ContentionConfig",
    "LatencyTable",
    "MachineConfig",
    "PlacementPolicy",
    "dash_full_config",
    "dash_scaled_config",
]
