"""Machine configuration.

All architectural parameters of the simulated DASH-like machine live here,
including the Table 1 latencies of the paper, reproduced below (1 pclock =
30 ns on the 33 MHz R3000):

====================================================  =========
Read operations                                        pclocks
====================================================  =========
Hit in primary cache                                        1
Fill from secondary cache                                  14
Fill from local node                                       26
Fill from home node (home != local)                        72
Fill from remote node (remote != home != local)            90
Write operations (retire from write buffer)
Owned by secondary cache                                    2
Owned by local node                                        18
Owned in home node (home != local)                         64
Owned in remote node (remote != home != local)             82
====================================================  =========

The paper's processor environment: 16 nodes, one 33 MHz MIPS R3000 per
node, 64 KB write-through primary data cache, 256 KB write-back secondary
cache, both lockup-free, direct-mapped, 16-byte lines; a 16-entry write
buffer with read bypassing; 133 MB/s node bus and ~150 MB/s network links
per node.  For the scaled methodology of Section 2.3, the shared-data
caches shrink to 2 KB primary / 4 KB secondary.
"""

from __future__ import annotations

import dataclasses
import enum
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.faults.plan import FaultPlan


class Consistency(enum.Enum):
    """Memory consistency model (Section 4).

    The paper evaluates SC and RC and notes that processor consistency,
    weak consistency, and DRF0 "fall between sequential and release
    consistency models in terms of flexibility"; PC and WC are provided
    here so that claim can be measured (see
    ``benchmarks/bench_consistency_models.py``).
    """

    SC = "sc"   # sequential consistency: stall on every access
    PC = "pc"   # processor consistency: FIFO write buffer, no fences
    WC = "wc"   # weak consistency: fences at *all* synchronization ops
    RC = "rc"   # release consistency: fences at releases only


class PlacementPolicy(enum.Enum):
    """Default placement for pages not explicitly homed (Section 2.3)."""

    ROUND_ROBIN = "round_robin"
    LOCAL = "local"
    SINGLE_NODE = "single_node"


@dataclass(frozen=True)
class LatencyTable:
    """Uncontended service latencies of Table 1, in pclocks.

    Writes are the time to *retire* the request from the write buffer,
    i.e. acquire exclusive ownership; invalidation acknowledgements may
    arrive later (``invalidation_ack_*``) and only gate release fences.
    """

    read_primary_hit: int = 1
    read_fill_secondary: int = 14
    read_fill_local: int = 26
    read_fill_home: int = 72
    read_fill_remote: int = 90

    write_owned_secondary: int = 2
    write_owned_local: int = 18
    write_owned_home: int = 64
    write_owned_remote: int = 82

    #: Extra pclocks until invalidation acknowledgements from sharers on
    #: the local node / a remote node are collected, beyond retire time
    #: (the ack overlaps the ownership reply, costing roughly one
    #: network traversal plus a directory pass beyond it).
    invalidation_ack_local: int = 8
    invalidation_ack_remote: int = 24

    #: Latency seen by uncached (cache-bypassing) shared accesses is five
    #: to ten cycles below the cached fill latencies (Section 3), because
    #: the fill overhead disappears.
    uncached_discount: int = 8

    def read_ladder(self):
        """The read latencies ordered by distance, as ``(field, value)``
        pairs — the analytic ladder ``validate`` enforces and the static
        envelope analyzer walks."""
        return (
            ("read_primary_hit", self.read_primary_hit),
            ("read_fill_secondary", self.read_fill_secondary),
            ("read_fill_local", self.read_fill_local),
            ("read_fill_home", self.read_fill_home),
            ("read_fill_remote", self.read_fill_remote),
        )

    def write_ladder(self):
        """The write (retire) latencies ordered by distance."""
        return (
            ("write_owned_secondary", self.write_owned_secondary),
            ("write_owned_local", self.write_owned_local),
            ("write_owned_home", self.write_owned_home),
            ("write_owned_remote", self.write_owned_remote),
        )

    def validate(self) -> None:
        ordered_reads = (
            self.read_primary_hit,
            self.read_fill_secondary,
            self.read_fill_local,
            self.read_fill_home,
            self.read_fill_remote,
        )
        if list(ordered_reads) != sorted(ordered_reads):
            raise ValueError("read latencies must be nondecreasing with distance")
        ordered_writes = (
            self.write_owned_secondary,
            self.write_owned_local,
            self.write_owned_home,
            self.write_owned_remote,
        )
        if list(ordered_writes) != sorted(ordered_writes):
            raise ValueError("write latencies must be nondecreasing with distance")
        if self.uncached_discount < 0:
            raise ValueError("uncached_discount must be nonnegative")
        if min(ordered_reads + ordered_writes) <= 0:
            raise ValueError("latencies must be positive")


@dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache level.

    DASH's caches are direct-mapped (``ways=1``, the default and the
    configuration used for every paper experiment); higher associativity
    is available for the interference ablations.
    """

    size_bytes: int
    line_bytes: int = 16
    ways: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise ValueError("cache sizes must be positive")
        if self.size_bytes % self.line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        if self.line_bytes & (self.line_bytes - 1):
            raise ValueError("line size must be a power of two")
        if self.ways <= 0:
            raise ValueError("associativity must be positive")
        if self.num_lines % self.ways:
            raise ValueError("line count must be a multiple of the ways")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.ways


@dataclass(frozen=True)
class ContentionConfig:
    """Occupancies charged on shared resources per transaction.

    Derived from the paper's bandwidths: the node bus moves 133 MB/s
    (= 4 bytes/pclock at 30 ns), so a 16-byte line + header occupies the
    bus for ~5 pclocks; network links move ~150 MB/s (~4.5 bytes/pclock),
    so a line-carrying message occupies a link for ~6 pclocks and a
    header-only message ~2.
    """

    bus_occupancy_data: int = 5
    bus_occupancy_header: int = 2
    link_occupancy_data: int = 6
    link_occupancy_header: int = 2
    directory_occupancy: int = 6
    memory_occupancy: int = 8

    #: Set false to disable contention modelling entirely (Table 1 probes).
    enabled: bool = True


@dataclass(frozen=True)
class MachineConfig:
    """Complete configuration of the simulated multiprocessor."""

    num_processors: int = 16
    contexts_per_processor: int = 1
    context_switch_cycles: int = 4

    consistency: Consistency = Consistency.SC
    caching_shared_data: bool = True

    #: Coherence protocol, by registry name
    #: (:func:`repro.coherence.specs.get_spec`): ``"directory-msi"``
    #: (the paper's protocol, the default), ``"mesi"`` (clean-exclusive
    #: state with silent E -> M upgrades), or ``"moesi"`` (statically
    #: verified only; the runtime rejects it until dirty sharing is
    #: implemented).  Non-default protocols change which transitions
    #: fire, so the field participates in config fingerprinting.
    protocol: str = "directory-msi"

    #: Enable the coherence invariant sanitizer (``repro.analysis``):
    #: every protocol transaction is followed by SWMR / directory
    #: precision / buffer-bound checks, and violations raise
    #: :class:`~repro.sim.engine.SimulationError` with a transition
    #: trace.  Off by default — it costs roughly an order of magnitude
    #: in simulation speed.
    sanitize: bool = False

    #: Record an append-only per-run memory-event trace (reads, writes,
    #: acquires, releases with issue/perform/complete times) for the
    #: offline axiomatic conformance checker
    #: (``repro.analysis.tracecheck``).  Off by default: with the flag
    #: off no recorder is installed anywhere, so default runs are
    #: bit-identical to builds without the tracing subsystem.
    trace_memory_events: bool = False

    #: Master seed for the run: mixed into the fault plan's random
    #: stream so ``--seed`` reproduces an injection schedule exactly.
    #: The simulator itself is deterministic with or without it.
    seed: int = 0

    #: Override of the event engine's livelock guard
    #: (:data:`~repro.sim.engine.DEFAULT_EVENT_LIMIT` when ``None``).
    max_events: Optional[int] = None

    #: Event-calendar implementation: ``"heap"`` (the reference binary
    #: heap) or ``"wheel"`` (the indexed event wheel, bit-identical but
    #: faster; see ``repro.sim.wheel``).  Timing-neutral by construction
    #: — the two backends fire the same events in the same order — so
    #: the field is excluded from canonical result encoding and cache
    #: fingerprints.  The default honours ``REPRO_ENGINE_BACKEND`` so CI
    #: can run whole suites per backend without plumbing a flag.
    engine_backend: str = field(
        default_factory=lambda: os.environ.get("REPRO_ENGINE_BACKEND", "heap")
    )

    #: Message-fault injection plan (``repro.faults``).  ``None`` or an
    #: empty plan installs no fault layer at all, which keeps fault-free
    #: runs bit-identical to builds without the faults subsystem.
    fault_plan: Optional["FaultPlan"] = None

    primary_cache: CacheGeometry = CacheGeometry(size_bytes=2 * 1024)
    secondary_cache: CacheGeometry = CacheGeometry(size_bytes=4 * 1024)

    write_buffer_depth: int = 16
    prefetch_buffer_depth: int = 16
    #: Reads may bypass buffered writes to other addresses (the paper's
    #: write buffer has "read bypassing").  The consistency model must
    #: also permit it (``ConsistencyPolicy.reads_bypass_writes``); set
    #: false to ablate bypassing under PC/WC/RC — litmus verdicts must
    #: not change, only timing.
    write_buffer_bypass: bool = True
    #: Maximum write misses the lockup-free secondary cache keeps in
    #: flight simultaneously (pipelining of writes under RC).
    max_outstanding_writes: int = 8

    #: Placement-unit size.  The scaled default is 512 bytes rather than
    #: DASH's 4 KB: the paper scales data sets down ~10x (Section 2.3),
    #: and keeping 4 KB pages would collapse whole shared arrays onto a
    #: single home node — a hot spot the full-size data sets do not
    #: have.  ``dash_full_config`` restores 4 KB pages.
    page_bytes: int = 512
    placement: PlacementPolicy = PlacementPolicy.ROUND_ROBIN

    latency: LatencyTable = LatencyTable()
    contention: ContentionConfig = ContentionConfig()

    #: Cycles the processor is locked out of the primary cache while a
    #: prefetched line is filled (four-word line => 4 cycles, Section 5.1).
    prefetch_fill_stall: int = 4
    #: Instruction overhead charged per issued prefetch (address
    #: computation, predicate, and the prefetch instruction itself).
    prefetch_issue_cycles: int = 2

    #: Write hits in the secondary cache stall the processor two cycles
    #: under SC (Section 6.1, "no switch" idle discussion).
    sc_write_hit_stall: int = 2

    #: Minimum stall, in cycles, that a multiple-context processor treats
    #: as a long-latency operation worth a context switch.  Shorter
    #: stalls (secondary-cache write hits, primary fill lockouts) show up
    #: as "no switch" idle time in Figure 5.
    switch_min_stall_cycles: int = 10

    def __post_init__(self) -> None:
        if self.num_processors <= 0:
            raise ValueError("need at least one processor")
        if self.contexts_per_processor <= 0:
            raise ValueError("need at least one context per processor")
        if self.context_switch_cycles < 0:
            raise ValueError("context switch overhead must be nonnegative")
        if self.write_buffer_depth <= 0 or self.prefetch_buffer_depth <= 0:
            raise ValueError("buffer depths must be positive")
        if self.max_outstanding_writes <= 0:
            raise ValueError("max_outstanding_writes must be positive")
        if self.primary_cache.line_bytes != self.secondary_cache.line_bytes:
            raise ValueError("primary/secondary line sizes must match")
        if self.page_bytes % self.primary_cache.line_bytes:
            raise ValueError("page size must be a multiple of the line size")
        if self.max_events is not None and self.max_events <= 0:
            raise ValueError("max_events must be positive")
        if self.engine_backend not in ("heap", "wheel"):
            raise ValueError(
                f"engine_backend must be 'heap' or 'wheel', "
                f"got {self.engine_backend!r}"
            )
        from repro.coherence.specs import spec_names

        if self.protocol not in spec_names():
            raise ValueError(
                f"unknown protocol {self.protocol!r}; registered specs: "
                f"{', '.join(spec_names())}"
            )
        if self.fault_plan is not None:
            from repro.faults.plan import FaultPlan

            if not isinstance(self.fault_plan, FaultPlan):
                raise TypeError(
                    f"fault_plan must be a FaultPlan, got "
                    f"{type(self.fault_plan).__name__}"
                )
        self.latency.validate()

    @property
    def line_bytes(self) -> int:
        return self.primary_cache.line_bytes

    @property
    def total_contexts(self) -> int:
        return self.num_processors * self.contexts_per_processor

    def replace(self, **changes) -> "MachineConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)


def dash_scaled_config(**changes) -> MachineConfig:
    """The paper's main configuration: 16 processors, scaled 2KB/4KB
    shared-data caches (Section 2.3)."""
    return MachineConfig().replace(**changes)


def dash_full_config(**changes) -> MachineConfig:
    """The full-size DASH cache configuration: 64KB primary / 256KB
    secondary (used for the paper's cache-size sensitivity check)."""
    config = MachineConfig(
        primary_cache=CacheGeometry(size_bytes=64 * 1024),
        secondary_cache=CacheGeometry(size_bytes=256 * 1024),
        page_bytes=4096,
    )
    return config.replace(**changes)
