"""repro — reproduction of Gupta, Hennessy, Gharachorloo, Mowry & Weber,
"Comparative Evaluation of Latency Reducing and Tolerating Techniques"
(ISCA 1991).

The package simulates a DASH-like 16-node cache-coherent multiprocessor
and evaluates four latency techniques — coherent caches, relaxed memory
consistency, software-controlled prefetching, and multiple-context
processors — on ports of the paper's three benchmarks (MP3D, LU, PTHOR).

Quickstart::

    from repro import dash_scaled_config, run_program
    from repro.apps import lu_program, LUConfig

    config = dash_scaled_config()
    result = run_program(lu_program(LUConfig(n=64)), config)
    print(result.execution_time, result.processor_utilization)
"""

from repro.config import (
    CacheGeometry,
    Consistency,
    LatencyTable,
    MachineConfig,
    PlacementPolicy,
    dash_full_config,
    dash_scaled_config,
)
from repro.processor.accounting import Bucket, TimeBreakdown
from repro.system import Machine, SimulationResult, run_program
from repro.tango import ProcessEnv, Program

__version__ = "1.0.0"

__all__ = [
    "Bucket",
    "CacheGeometry",
    "Consistency",
    "LatencyTable",
    "Machine",
    "MachineConfig",
    "PlacementPolicy",
    "ProcessEnv",
    "Program",
    "SimulationResult",
    "TimeBreakdown",
    "dash_full_config",
    "dash_scaled_config",
    "run_program",
]
