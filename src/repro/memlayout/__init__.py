"""Shared-memory layout: address helpers, regions, page placement."""

from repro.memlayout.address import (
    align_up,
    line_index,
    line_of,
    lines_spanned,
    page_of,
)
from repro.memlayout.allocator import Region, SharedMemoryAllocator

__all__ = [
    "Region",
    "SharedMemoryAllocator",
    "align_up",
    "line_index",
    "line_of",
    "lines_spanned",
    "page_of",
]
