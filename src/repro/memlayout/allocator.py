"""Shared-memory allocator with DASH-style page placement.

Applications carve the simulated shared address space into named regions.
Each region is page-aligned and placed according to a policy:

* ``local(node)`` — all pages homed at one node.  The paper's applications
  use this for per-processor data (MP3D particles, LU owned columns) to
  reduce miss penalties.
* ``round_robin()`` — pages distributed across all nodes in order, the
  simulator's default for unannotated data (Section 2.3).

The allocator records, for every page, which node is its *home* (holds
main memory and the directory entry for its lines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memlayout.address import align_up


@dataclass(frozen=True)
class Region:
    """A named, contiguous, page-aligned chunk of shared memory."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def addr(self, offset: int) -> int:
        """Address ``offset`` bytes into the region, bounds-checked."""
        if not 0 <= offset < self.size:
            raise IndexError(
                f"offset {offset} outside region {self.name!r} of size {self.size}"
            )
        return self.base + offset

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class SharedMemoryAllocator:
    """Carves the address space into regions and assigns page homes."""

    def __init__(self, num_nodes: int, page_bytes: int = 4096) -> None:
        if num_nodes <= 0:
            raise ValueError("need at least one node")
        if page_bytes <= 0:
            raise ValueError("page size must be positive")
        self.num_nodes = num_nodes
        self.page_bytes = page_bytes
        self._next_base = page_bytes  # keep address 0 unused as a guard
        self._rr_next = 0
        self._page_home: Dict[int, int] = {}
        self._regions: List[Region] = []

    # -- allocation ------------------------------------------------------

    def alloc_local(self, name: str, size: int, node: int) -> Region:
        """Allocate a region whose pages are all homed at ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} out of range")
        return self._alloc(name, size, lambda _page: node)

    def alloc_round_robin(self, name: str, size: int) -> Region:
        """Allocate a region whose pages rotate across all nodes."""

        def placer(_page: int) -> int:
            node = self._rr_next
            self._rr_next = (self._rr_next + 1) % self.num_nodes
            return node

        return self._alloc(name, size, placer)

    def alloc_striped(self, name: str, size: int, stride_pages: int = 1) -> Region:
        """Allocate a region striped across nodes every ``stride_pages``."""
        if stride_pages <= 0:
            raise ValueError("stride must be positive")
        counter = {"pages": 0}

        def placer(_page: int) -> int:
            node = (counter["pages"] // stride_pages) % self.num_nodes
            counter["pages"] += 1
            return node

        return self._alloc(name, size, placer)

    def _alloc(self, name: str, size: int, placer) -> Region:
        if size <= 0:
            raise ValueError("region size must be positive")
        if any(region.name == name for region in self._regions):
            raise ValueError(f"duplicate region name {name!r}")
        base = self._next_base
        padded = align_up(size, self.page_bytes)
        region = Region(name=name, base=base, size=size)
        first_page = base // self.page_bytes
        for page in range(first_page, (base + padded) // self.page_bytes):
            self._page_home[page] = placer(page)
        self._next_base = base + padded
        self._regions.append(region)
        return region

    # -- queries ---------------------------------------------------------

    def home_of(self, addr: int) -> int:
        """Home node of the page containing ``addr``."""
        try:
            return self._page_home[addr // self.page_bytes]
        except KeyError:
            raise KeyError(f"address {addr:#x} is not in any allocated region")

    def region_of(self, addr: int) -> Optional[Region]:
        """Region containing ``addr``, or None."""
        for region in self._regions:
            if region.contains(addr):
                return region
        return None

    @property
    def regions(self) -> List[Region]:
        return list(self._regions)

    @property
    def total_allocated(self) -> int:
        """Total bytes requested across regions (shared data size stat)."""
        return sum(region.size for region in self._regions)
