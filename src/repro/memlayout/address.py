"""Address arithmetic helpers.

Simulated shared addresses are plain nonnegative integers.  A *line* is
the coherence unit (16 bytes in the paper); a *page* is the placement
unit that the round-robin allocator distributes across nodes.
"""

from __future__ import annotations


def line_of(addr: int, line_bytes: int) -> int:
    """Line-aligned base address containing ``addr``."""
    return addr - (addr % line_bytes)


def line_index(addr: int, line_bytes: int) -> int:
    """Ordinal index of the line containing ``addr``."""
    return addr // line_bytes

def page_of(addr: int, page_bytes: int) -> int:
    """Ordinal index of the page containing ``addr``."""
    return addr // page_bytes


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    remainder = value % alignment
    if remainder:
        return value + alignment - remainder
    return value


def lines_spanned(addr: int, size: int, line_bytes: int) -> range:
    """Line-aligned base addresses of every line touched by
    ``[addr, addr + size)``."""
    if size <= 0:
        raise ValueError("size must be positive")
    first = line_of(addr, line_bytes)
    last = line_of(addr + size - 1, line_bytes)
    return range(first, last + line_bytes, line_bytes)
