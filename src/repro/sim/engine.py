"""Discrete event simulation engine.

The engine is a classic calendar built on a binary heap.  Time is measured
in integer processor clocks (pclocks; the paper uses 1 pclock = 30 ns).
Events scheduled for the same time fire in FIFO order, which makes runs
deterministic.

The engine also exposes :meth:`EventEngine.peek_time`, which lets a
processor model decide whether it may keep executing *inline* (no event
round-trip) because no other event in the system can fire before the
processor's own local time.  This is the key fast path: streams of cache
hits cost zero heap operations.

This heap implementation is the *reference* backend.  A drop-in indexed
event wheel (:class:`repro.sim.wheel.WheelEventEngine`) provides the same
API and bit-identical behaviour at higher throughput; select between them
with :func:`create_engine` (driven by ``MachineConfig.engine_backend``).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

#: Sentinel returned by :meth:`EventEngine.peek_time` when the calendar is
#: empty — any local time compares as "not behind" this.  An integer (not
#: ``float("inf")``) so pclock comparisons never mix in floats; 2**63 is
#: far beyond any reachable simulated time (the event limit bounds runs
#: to ~2e9 events).
TIME_INFINITY = 2**63

#: Default event budget before a run is declared a livelock.
DEFAULT_EVENT_LIMIT = 2_000_000_000

#: Recognised event-calendar implementations (see :func:`create_engine`).
ENGINE_BACKENDS = ("heap", "wheel")


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class DeadlockError(SimulationError):
    """Raised when the calendar drains while work is still pending."""


class EventEngine:
    """A deterministic discrete-event calendar.

    Events are ``(time, callback)`` pairs.  ``run`` pops events in time
    order and invokes the callbacks; callbacks typically advance a
    processor, retire a memory transaction, or release a synchronization
    primitive, and may schedule further events.

    The public ``next_time`` attribute always equals the time of the
    earliest pending event (``TIME_INFINITY`` when the calendar is
    empty) whenever user code runs — i.e. outside the engine's own
    internal bookkeeping.  Hot paths may read it directly instead of
    calling :meth:`peek_time`.
    """

    __slots__ = (
        "_queue",
        "_seq",
        "_now",
        "next_time",
        "_events_processed",
        "_limit",
        "_heartbeat",
        "_heartbeat_every",
        "_next_heartbeat",
    )

    def __init__(self, event_limit: int = DEFAULT_EVENT_LIMIT) -> None:
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self._now = 0
        self.next_time = TIME_INFINITY
        self._events_processed = 0
        self._limit = event_limit
        self._heartbeat: Optional[Callable[["EventEngine"], None]] = None
        self._heartbeat_every = 0
        self._next_heartbeat = TIME_INFINITY

    @property
    def now(self) -> int:
        """Time of the most recently fired event."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (diagnostic)."""
        return self._events_processed

    def schedule(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at ``time``.

        ``time`` must not be in the past relative to the engine clock;
        same-time scheduling is allowed and fires in FIFO order.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self._now}"
            )
        heapq.heappush(self._queue, (time, self._seq, callback))
        self._seq += 1
        if time < self.next_time:
            self.next_time = time

    def schedule_after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` pclocks from now."""
        self.schedule(self._now + delay, callback)

    def peek_time(self) -> int:
        """Time of the earliest pending event, or ``TIME_INFINITY``.

        A component whose local clock is <= this value may safely act
        inline without an event round-trip: no other event can interleave
        before its local time.
        """
        return self.next_time

    @property
    def pending(self) -> int:
        """Number of events waiting in the calendar."""
        return len(self._queue)

    def set_heartbeat(
        self, callback: Optional[Callable[["EventEngine"], None]], every: int = 250_000
    ) -> None:
        """Invoke ``callback(engine)`` every ``every`` fired events.

        Used by watchdogs to check wall-clock progress from inside long
        runs; pass ``None`` to detach.  The callback may raise to abort
        the run (e.g. :class:`~repro.faults.watchdog.WatchdogTimeout`).
        """
        if callback is not None and every <= 0:
            raise ValueError("heartbeat interval must be positive")
        self._heartbeat = callback
        if callback is None:
            self._next_heartbeat = TIME_INFINITY
        else:
            self._heartbeat_every = every
            self._next_heartbeat = self._events_processed + every

    def _fire_heartbeat(self) -> None:
        self._next_heartbeat = self._events_processed + self._heartbeat_every
        self._heartbeat(self)  # type: ignore[misc]

    def _limit_error(self, time: int) -> SimulationError:
        return SimulationError(
            f"event limit {self._limit} exceeded at t={time} with "
            f"{len(self._queue)} events pending; likely a livelock in "
            "the simulated program"
        )

    def run(self) -> int:
        """Fire events until the calendar drains; return the final time."""
        queue = self._queue
        while queue:
            time, _seq, callback = heapq.heappop(queue)
            self._now = time
            if queue:
                self.next_time = queue[0][0]
            else:
                self.next_time = TIME_INFINITY
            self._events_processed += 1
            if self._events_processed > self._limit:
                raise self._limit_error(time)
            if self._events_processed >= self._next_heartbeat:
                self._fire_heartbeat()
            callback()
        return self._now

    def run_until(self, deadline: int) -> int:
        """Fire events with time <= ``deadline``; return the final time."""
        queue = self._queue
        while queue and queue[0][0] <= deadline:
            time, _seq, callback = heapq.heappop(queue)
            self._now = time
            if queue:
                self.next_time = queue[0][0]
            else:
                self.next_time = TIME_INFINITY
            self._events_processed += 1
            if self._events_processed > self._limit:
                raise self._limit_error(time)
            if self._events_processed >= self._next_heartbeat:
                self._fire_heartbeat()
            callback()
        if self._now < deadline:
            self._now = deadline
        return self._now


def create_engine(backend: str, event_limit: int = DEFAULT_EVENT_LIMIT):
    """Build the event calendar named by ``backend``.

    ``"heap"`` is the reference :class:`EventEngine`; ``"wheel"`` is the
    indexed event wheel, proven bit-identical by the differential battery
    in ``tests/test_engine_wheel.py``.
    """
    if backend == "heap":
        return EventEngine(event_limit=event_limit)
    if backend == "wheel":
        # Imported lazily: wheel.py imports the error types from here.
        from repro.sim.wheel import WheelEventEngine

        return WheelEventEngine(event_limit=event_limit)
    raise ValueError(
        f"unknown engine backend {backend!r}; expected one of {ENGINE_BACKENDS}"
    )
