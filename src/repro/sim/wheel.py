"""Indexed hierarchical event wheel — the fast event-calendar backend.

Drop-in replacement for :class:`repro.sim.engine.EventEngine` (same API,
same error surfaces, bit-identical fire order) built for the near-future
schedule pattern that dominates pclock traffic: almost every event lands
within a few hundred pclocks of ``now``, so a ring of per-tick FIFO
buckets gives O(1) schedule and O(1) amortized pop, with a small heap
("far list") absorbing the rare events beyond the wheel horizon.

Layout
------
``WHEEL_SLOTS`` (a power of two) buckets, each a plain list of callbacks
for one absolute time; an event at time ``t`` with ``t - now <
WHEEL_SLOTS`` lives in bucket ``t & (WHEEL_SLOTS - 1)``.  A single big
integer holds the occupancy bitmap — finding the next populated bucket is
one rotate + one ``bit_length`` on the lowest set bit, independent of
wheel size.  Events past the horizon go to the far heap and fire straight
from it; they are never migrated into the wheel.

Equivalence with the heap backend (the FIFO-tie argument): an event is
"far" iff ``t >= sched_now + WHEEL_SLOTS`` at schedule time and "near"
iff ``t < sched_now + WHEEL_SLOTS``.  Because ``now`` is monotone, every
far entry at time ``t`` was necessarily scheduled strictly before every
bucket entry at ``t`` (their schedule-time horizons cannot overlap), so
draining far entries first (in heap seq order) followed by the bucket's
append order reproduces the reference engine's global FIFO exactly.  The
differential battery in ``tests/test_engine_wheel.py`` checks this
property on randomized schedules.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.sim.engine import (
    DEFAULT_EVENT_LIMIT,
    TIME_INFINITY,
    SimulationError,
)

#: Number of per-tick FIFO buckets.  Power of two so the bucket index is
#: a mask.  128 pclocks covers every Table 1 latency (longest single
#: transition: 90 pclocks) plus typical queuing delay — measured on the
#: smoke workloads, ~99% of schedules land within 128 pclocks of now —
#: while keeping the occupancy bitmap a 128-bit integer, so the per-pop
#: mask/shift ops in ``_earliest`` touch half as many bignum digits as a
#: 256-slot wheel would.  Events past the horizon fall back to the far
#: heap, which is correct (far-first tie rule) at any wheel size.
WHEEL_SLOTS = 128
_MASK = WHEEL_SLOTS - 1
_FULL = (1 << WHEEL_SLOTS) - 1

#: Per-slot bit and clear masks, built once: ``x | _BIT[i]`` and
#: ``x & _CLEAR[i]`` reuse these interned big ints instead of
#: constructing a fresh ``1 << i`` (and its complement) on every
#: schedule and every pop.
_BIT = tuple(1 << i for i in range(WHEEL_SLOTS))
_CLEAR = tuple(_FULL ^ (1 << i) for i in range(WHEEL_SLOTS))


class WheelEventEngine:
    """Indexed event wheel with the :class:`EventEngine` contract.

    All invariants of the reference engine hold here too — in
    particular the public ``next_time`` attribute equals the time of
    the earliest pending event (``TIME_INFINITY`` when empty) whenever
    user code runs.

    Internal invariant: every bucketed event's time lies in
    ``[now, now + WHEEL_SLOTS)``, so each bucket holds at most one
    distinct absolute time and ``t & _MASK`` never collides.
    """

    __slots__ = (
        "_buckets",
        "_occupancy",
        "_far",
        "_seq",
        "_count",
        "_now",
        "next_time",
        "_events_processed",
        "_limit",
        "_heartbeat",
        "_heartbeat_every",
        "_next_heartbeat",
    )

    def __init__(self, event_limit: int = DEFAULT_EVENT_LIMIT) -> None:
        self._buckets: List[List[Callable[[], None]]] = [
            [] for _ in range(WHEEL_SLOTS)
        ]
        self._occupancy = 0
        self._far: List[Tuple[int, int, Callable[[], None]]] = []
        self._seq = 0
        self._count = 0
        self._now = 0
        self.next_time = TIME_INFINITY
        self._events_processed = 0
        self._limit = event_limit
        self._heartbeat: Optional[Callable[["WheelEventEngine"], None]] = None
        self._heartbeat_every = 0
        self._next_heartbeat = TIME_INFINITY

    @property
    def now(self) -> int:
        """Time of the most recently fired event."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (diagnostic)."""
        return self._events_processed

    def schedule(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire at ``time``.

        ``time`` must not be in the past relative to the engine clock;
        same-time scheduling is allowed and fires in FIFO order.
        """
        now = self._now
        if time < now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={now}"
            )
        if time - now < WHEEL_SLOTS:
            index = time & _MASK
            self._buckets[index].append(callback)
            self._occupancy |= _BIT[index]
        else:
            heapq.heappush(self._far, (time, self._seq, callback))
            self._seq += 1
        self._count += 1
        if time < self.next_time:
            self.next_time = time

    def schedule_after(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to fire ``delay`` pclocks from now."""
        self.schedule(self._now + delay, callback)

    def peek_time(self) -> int:
        """Time of the earliest pending event, or ``TIME_INFINITY``."""
        return self.next_time

    @property
    def pending(self) -> int:
        """Number of events waiting in the calendar."""
        return self._count

    def set_heartbeat(
        self,
        callback: Optional[Callable[["WheelEventEngine"], None]],
        every: int = 250_000,
    ) -> None:
        """Invoke ``callback(engine)`` every ``every`` fired events."""
        if callback is not None and every <= 0:
            raise ValueError("heartbeat interval must be positive")
        self._heartbeat = callback
        if callback is None:
            self._next_heartbeat = TIME_INFINITY
        else:
            self._heartbeat_every = every
            self._next_heartbeat = self._events_processed + every

    def _fire_heartbeat(self) -> None:
        self._next_heartbeat = self._events_processed + self._heartbeat_every
        self._heartbeat(self)  # type: ignore[misc]

    def _limit_error(self, time: int) -> SimulationError:
        return SimulationError(
            f"event limit {self._limit} exceeded at t={time} with "
            f"{self._count} events pending; likely a livelock in "
            "the simulated program"
        )

    def _earliest(self) -> int:
        """Earliest pending time (``TIME_INFINITY`` when none), from the
        occupancy bitmap and the far heap.

        Correct only when every set occupancy bit corresponds to a
        bucket with unfired entries — the drain loops clear the current
        bucket's bit before recomputing.
        """
        occupancy = self._occupancy
        if occupancy:
            # Bits at or above the current slot belong to this lap of
            # the wheel (delta = slot - index); bits below wrapped into
            # the next lap (delta = WHEEL_SLOTS - index + slot).  The
            # common case — the next event within the current lap —
            # costs one big-int shift instead of a full rotation.
            index = self._now & _MASK
            high = occupancy >> index
            if high:
                near = self._now + ((high & -high).bit_length() - 1)
            else:
                near = (
                    self._now
                    + WHEEL_SLOTS
                    - index
                    + ((occupancy & -occupancy).bit_length() - 1)
                )
        else:
            near = TIME_INFINITY
        far = self._far
        if far and far[0][0] < near:
            return far[0][0]
        return near

    def run(self) -> int:
        """Fire events until the calendar drains; return the final time.

        The loop leans on the exact ``next_time`` invariant: the slot
        always names the true earliest pending time, so each iteration
        jumps straight to that bucket (or the far heap on a tie) with no
        occupancy scan of its own.
        """
        buckets = self._buckets
        far = self._far
        limit = self._limit
        while self._count:
            bucket_time = self.next_time
            if far and far[0][0] <= bucket_time:
                # Ties go to the far heap: a far entry at time t is
                # always older than any bucket entry at t (see module
                # docstring), so this preserves global FIFO order.
                time, _seq, callback = heapq.heappop(far)
                self._count -= 1
                self._now = time
                self.next_time = self._earliest()
                self._events_processed += 1
                if self._events_processed > limit:
                    raise self._limit_error(time)
                if self._events_processed >= self._next_heartbeat:
                    self._fire_heartbeat()
                callback()
                continue
            index = bucket_time & _MASK
            bucket = buckets[index]
            self._now = bucket_time
            if len(bucket) == 1:
                # Singleton bucket — the dominant case in steady state
                # (each processor has at most one continuation pending).
                # The event is fully consumed *before* the callback, so
                # an exception leaves the calendar consistent with no
                # handler, and ``_earliest`` is inlined with the bucket
                # time already in hand.  ``pop()`` empties the singleton
                # in one C call (no slice object per event).
                callback = bucket.pop()
                self._count -= 1
                occupancy = self._occupancy & _CLEAR[index]
                self._occupancy = occupancy
                if occupancy:
                    high = occupancy >> index
                    if high:
                        near = bucket_time + ((high & -high).bit_length() - 1)
                    else:
                        near = (
                            bucket_time
                            + WHEEL_SLOTS
                            - index
                            + ((occupancy & -occupancy).bit_length() - 1)
                        )
                else:
                    near = TIME_INFINITY
                if far and far[0][0] < near:
                    near = far[0][0]
                self.next_time = near
                events = self._events_processed + 1
                self._events_processed = events
                if events > limit:
                    raise self._limit_error(bucket_time)
                if events >= self._next_heartbeat:
                    self._fire_heartbeat()
                callback()
                continue
            bit = _BIT[index]
            clear = _CLEAR[index]
            fired = 0
            while fired < len(bucket):
                # Clear the bucket's occupancy bit every iteration: a
                # callback scheduling at the current time re-appends to
                # this very bucket (and re-sets the bit via schedule),
                # and _earliest must not see fired-but-undeleted
                # entries as pending.
                self._occupancy &= clear
                callback = bucket[fired]
                fired += 1
                self._count -= 1
                self._events_processed += 1
                if fired < len(bucket):
                    self.next_time = bucket_time
                else:
                    self.next_time = self._earliest()
                try:
                    if self._events_processed > limit:
                        raise self._limit_error(bucket_time)
                    if self._events_processed >= self._next_heartbeat:
                        self._fire_heartbeat()
                    callback()
                except BaseException:
                    # Restore a consistent calendar before propagating
                    # (drop the fired prefix, keep survivors visible).
                    del bucket[:fired]
                    if bucket:
                        self._occupancy |= bit
                    raise
            del bucket[:]
        return self._now

    def run_until(self, deadline: int) -> int:
        """Fire events with time <= ``deadline``; return the final time."""
        buckets = self._buckets
        far = self._far
        limit = self._limit
        while self._count:
            bucket_time = self.next_time
            if bucket_time > deadline:
                break
            if far and far[0][0] <= bucket_time:
                time, _seq, callback = heapq.heappop(far)
                self._count -= 1
                self._now = time
                self.next_time = self._earliest()
                self._events_processed += 1
                if self._events_processed > limit:
                    raise self._limit_error(time)
                if self._events_processed >= self._next_heartbeat:
                    self._fire_heartbeat()
                callback()
                continue
            index = bucket_time & _MASK
            bucket = buckets[index]
            self._now = bucket_time
            if len(bucket) == 1:
                # Singleton fast path; see ``run`` for the invariant
                # argument.
                callback = bucket.pop()
                self._count -= 1
                occupancy = self._occupancy & _CLEAR[index]
                self._occupancy = occupancy
                if occupancy:
                    high = occupancy >> index
                    if high:
                        near = bucket_time + ((high & -high).bit_length() - 1)
                    else:
                        near = (
                            bucket_time
                            + WHEEL_SLOTS
                            - index
                            + ((occupancy & -occupancy).bit_length() - 1)
                        )
                else:
                    near = TIME_INFINITY
                if far and far[0][0] < near:
                    near = far[0][0]
                self.next_time = near
                events = self._events_processed + 1
                self._events_processed = events
                if events > limit:
                    raise self._limit_error(bucket_time)
                if events >= self._next_heartbeat:
                    self._fire_heartbeat()
                callback()
                continue
            bit = _BIT[index]
            clear = _CLEAR[index]
            fired = 0
            while fired < len(bucket):
                self._occupancy &= clear
                callback = bucket[fired]
                fired += 1
                self._count -= 1
                self._events_processed += 1
                if fired < len(bucket):
                    self.next_time = bucket_time
                else:
                    self.next_time = self._earliest()
                try:
                    if self._events_processed > limit:
                        raise self._limit_error(bucket_time)
                    if self._events_processed >= self._next_heartbeat:
                        self._fire_heartbeat()
                    callback()
                except BaseException:
                    del bucket[:fired]
                    if bucket:
                        self._occupancy |= bit
                    raise
            del bucket[:]
        if self._now < deadline:
            self._now = deadline
        return self._now
