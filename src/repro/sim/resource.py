"""Queued hardware resources.

A :class:`QueuedResource` models a unit that serves one transaction at a
time (a bus, a network link, a directory controller, a memory bank) using
earliest-free-time bookkeeping: a request arriving at ``t`` begins service
at ``max(t, next_free)`` and occupies the resource for its occupancy.

This gives first-order contention (queuing delay grows with offered load,
hot spots serialize) without simulating individual arbitration cycles,
matching the behavioural level of the paper's simulator.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class QueuedResource:
    """A single-server FIFO resource with earliest-free-time queuing."""

    __slots__ = ("name", "_next_free", "_busy_total", "_transactions")

    def __init__(self, name: str) -> None:
        self.name = name
        self._next_free = 0
        self._busy_total = 0
        self._transactions = 0

    def acquire(self, time: int, occupancy: int) -> int:
        """Occupy the resource for ``occupancy`` pclocks starting no
        earlier than ``time``.

        Returns the time at which the transaction *finishes* service.
        The queuing delay experienced is ``start - time``.
        """
        if occupancy < 0:
            raise ValueError(f"negative occupancy {occupancy} on {self.name}")
        if time < 0:
            raise ValueError(
                f"acquire of {self.name} at t={time}, before simulation start"
            )
        start = time if time > self._next_free else self._next_free
        finish = start + occupancy
        self._next_free = finish
        self._busy_total += occupancy
        self._transactions += 1
        return finish

    def delay(self, time: int, occupancy: int) -> int:
        """Like :meth:`acquire` but returns only the queuing delay."""
        return self.acquire(time, occupancy) - occupancy - time

    @property
    def next_free(self) -> int:
        """Earliest time a new transaction could begin service."""
        return self._next_free

    @property
    def busy_total(self) -> int:
        """Total pclocks of service performed (utilization numerator)."""
        return self._busy_total

    @property
    def transactions(self) -> int:
        """Number of transactions served."""
        return self._transactions

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` pclocks spent serving transactions."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_total / elapsed)


class ResourceGroup:
    """A named collection of :class:`QueuedResource` for reporting."""

    __slots__ = ("_resources",)

    def __init__(self) -> None:
        self._resources: List[QueuedResource] = []

    def new(self, name: str) -> QueuedResource:
        resource = QueuedResource(name)
        self._resources.append(resource)
        return resource

    def __iter__(self):
        return iter(self._resources)

    def __len__(self) -> int:
        return len(self._resources)

    def busiest(self, elapsed: int) -> Optional[Tuple[str, float]]:
        """Return ``(name, utilization)`` of the most loaded resource."""
        best = None
        for resource in self._resources:
            util = resource.utilization(elapsed)
            if best is None or util > best[1]:
                best = (resource.name, util)
        return best
