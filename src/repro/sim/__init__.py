"""Discrete-event simulation kernel (event calendar and queued resources)."""

from repro.sim.engine import (
    DeadlockError,
    ENGINE_BACKENDS,
    EventEngine,
    SimulationError,
    TIME_INFINITY,
    create_engine,
)
from repro.sim.resource import QueuedResource, ResourceGroup
from repro.sim.wheel import WheelEventEngine

__all__ = [
    "DeadlockError",
    "ENGINE_BACKENDS",
    "EventEngine",
    "QueuedResource",
    "ResourceGroup",
    "SimulationError",
    "TIME_INFINITY",
    "WheelEventEngine",
    "create_engine",
]
