"""Discrete-event simulation kernel (event calendar and queued resources)."""

from repro.sim.engine import (
    DeadlockError,
    EventEngine,
    SimulationError,
    TIME_INFINITY,
)
from repro.sim.resource import QueuedResource, ResourceGroup

__all__ = [
    "DeadlockError",
    "EventEngine",
    "QueuedResource",
    "ResourceGroup",
    "SimulationError",
    "TIME_INFINITY",
]
