"""Cache arrays.

Both cache levels of the DASH processor environment are direct-mapped
with 16-byte lines.  The primary cache is write-through (lines are only
VALID or absent); the secondary cache is write-back and participates in
the coherence protocol (lines are SHARED or DIRTY).

Only *shared* data flows through these caches; instruction and private
references are assumed to hit, as in the paper (Section 2.3, footnote 2).

:class:`DirectMappedCache` also supports set-associative geometries with
LRU replacement (``CacheGeometry.ways > 1``) for the interference
ablations; the paper's experiments all use ``ways=1``, which takes a
dedicated fast path.

Storage is packed array-of-struct: with ``ways == 1`` the array is a
flat ``_tags`` list (line base addresses, ``-1`` for never-filled) plus
a ``_states`` bytearray of raw :class:`LineState` values, so the
protocol's hot path can probe both with plain integer indexing via
:meth:`DirectMappedCache.packed_arrays` and never construct an enum.
The public API still speaks :class:`LineState` members.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple


from repro.config import CacheGeometry


class LineState(enum.IntEnum):
    """Coherence state of a cached line.

    The base directory-MSI protocol uses the first three members.
    ``EXCLUSIVE`` (clean, sole copy) is used by the MESI runtime
    protocol; ``OWNED`` (dirty, shared responsibility) appears only in
    the abstract MOESI :class:`~repro.coherence.specs.ProtocolSpec` —
    the runtime never installs it.
    """

    INVALID = 0
    SHARED = 1     # clean, possibly one of several copies
    DIRTY = 2      # exclusive, modified (secondary cache only)
    EXCLUSIVE = 3  # clean, sole copy (MESI's E; silent upgrade to DIRTY)
    OWNED = 4      # dirty, other clean copies may exist (MOESI's O)


#: Raw-byte -> member table for the packed state array (index == value).
_MEMBERS = (
    LineState.INVALID,
    LineState.SHARED,
    LineState.DIRTY,
    LineState.EXCLUSIVE,
    LineState.OWNED,
)


class DirectMappedCache:
    """A (set-associative capable) cache array of (tag, state) entries.

    ``tag`` stores the full line base address, which keeps lookups
    trivial and exact.  With ``ways == 1`` (DASH's configuration, and
    the default) the hot paths avoid all per-set list handling.
    """

    __slots__ = (
        "geometry",
        "_tags",
        "_states",
        "_sets",
        "_line_bytes",
        "_num_sets",
        "_ways",
        "hits",
        "misses",
        "evictions",
        "invalidations_received",
    )

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._line_bytes = geometry.line_bytes
        self._num_sets = geometry.num_sets
        self._ways = geometry.ways
        if self._ways == 1:
            self._tags = [-1] * self._num_sets
            self._states = bytearray(self._num_sets)
            self._sets = None
        else:
            # Per-set list of [tag, state], most recently used first.
            self._tags = None
            self._states = None
            self._sets = [[] for _ in range(self._num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations_received = 0

    # -- geometry helpers --------------------------------------------------

    def set_index(self, line: int) -> int:
        return (line // self._line_bytes) % self._num_sets

    def line_of(self, addr: int) -> int:
        return addr - (addr % self._line_bytes)

    def packed_arrays(self):
        """The raw ``(tags, states)`` arrays, or ``None`` when the
        geometry is associative.

        The lists/bytearray are mutated in place and never rebound, so
        holders may alias them.  ``states`` entries are raw ints; the
        caller owns keeping the hit/miss counters honest when probing
        around the public API (see the protocol fast path).
        """
        if self._ways == 1:
            return self._tags, self._states
        return None

    # -- associative-set helpers ---------------------------------------------

    def _find(self, entries, line: int):
        for position, entry in enumerate(entries):
            if entry[0] == line:
                return position
        return None

    # -- accesses ----------------------------------------------------------

    def lookup(self, line: int) -> LineState:
        """State of ``line`` (INVALID when absent); counts hit/miss and
        refreshes LRU order on associative geometries."""
        if self._ways == 1:
            index = (line // self._line_bytes) % self._num_sets
            if self._tags[index] == line:
                state = self._states[index]
                if state:
                    self.hits += 1
                    return _MEMBERS[state]
            self.misses += 1
            return LineState.INVALID
        entries = self._sets[self.set_index(line)]
        position = self._find(entries, line)
        if position is not None and entries[position][1] != LineState.INVALID:
            entry = entries.pop(position)
            entries.insert(0, entry)
            self.hits += 1
            return entry[1]
        self.misses += 1
        return LineState.INVALID

    def probe(self, line: int) -> LineState:
        """State of ``line`` without touching counters or LRU order."""
        if self._ways == 1:
            index = (line // self._line_bytes) % self._num_sets
            if self._tags[index] == line:
                return _MEMBERS[self._states[index]]
            return LineState.INVALID
        index = self.set_index(line)
        position = self._find(self._sets[index], line)
        if position is not None:
            return self._sets[index][position][1]
        return LineState.INVALID

    def insert(
        self, line: int, state: LineState
    ) -> Optional[Tuple[int, LineState]]:
        """Install ``line`` with ``state``.

        Returns ``(victim_line, victim_state)`` if a different valid line
        was evicted from the set, else None.
        """
        if state == LineState.INVALID:
            raise ValueError("cannot insert a line in INVALID state")
        if self._ways == 1:
            index = (line // self._line_bytes) % self._num_sets
            tags = self._tags
            states = self._states
            victim = None
            if tags[index] != line and tags[index] != -1 and states[index]:
                victim = (tags[index], _MEMBERS[states[index]])
                self.evictions += 1
            tags[index] = line
            states[index] = state
            return victim
        entries = self._sets[self.set_index(line)]
        position = self._find(entries, line)
        if position is not None:
            entry = entries.pop(position)
            entry[1] = state
            entries.insert(0, entry)
            return None
        entries.insert(0, [line, state])
        if len(entries) > self._ways:
            victim_line, victim_state = entries.pop()
            if victim_state != LineState.INVALID:
                self.evictions += 1
                return (victim_line, victim_state)
        return None

    def set_state(self, line: int, state: LineState) -> None:
        """Change the state of a resident line (e.g. SHARED -> DIRTY)."""
        if self._ways == 1:
            index = (line // self._line_bytes) % self._num_sets
            if self._tags[index] != line or not self._states[index]:
                raise KeyError(f"line {line:#x} not resident")
            self._states[index] = state
            return
        index = self.set_index(line)
        position = self._find(self._sets[index], line)
        if position is None or self._sets[index][position][1] == LineState.INVALID:
            raise KeyError(f"line {line:#x} not resident")
        self._sets[index][position][1] = state

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if resident; True if something was dropped."""
        if self._ways == 1:
            index = (line // self._line_bytes) % self._num_sets
            if self._tags[index] == line and self._states[index]:
                self._states[index] = 0
                self.invalidations_received += 1
                return True
            return False
        entries = self._sets[self.set_index(line)]
        position = self._find(entries, line)
        if position is not None and entries[position][1] != LineState.INVALID:
            entries.pop(position)
            self.invalidations_received += 1
            return True
        return False

    def resident_lines(self):
        """Iterate over (line, state) of valid entries (for invariants)."""
        if self._ways == 1:
            for tag, state in zip(self._tags, self._states):
                if tag != -1 and state:
                    yield tag, _MEMBERS[state]
            return
        for entries in self._sets:
            for tag, state in entries:
                if state != LineState.INVALID:
                    yield tag, state

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0
