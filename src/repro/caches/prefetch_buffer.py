"""Prefetch buffer.

A prefetch instruction is issued to a dedicated 16-entry buffer (identical
to a write buffer but carrying only prefetch requests) so that prefetches
are not delayed behind writes (Section 5.1).  When a prefetch reaches the
head of the buffer the secondary cache is checked; if the line is already
present the prefetch is discarded, otherwise it goes onto the bus like a
normal memory request.  When the response returns it fills both cache
levels, stalling the processor for the fill (four cycles for a four-word
line) if it is executing.

This module is the bookkeeping structure; the drain engine lives in
:mod:`repro.system.memiface`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Optional
from collections import deque


@dataclass
class PrefetchEntry:
    """One buffered prefetch request."""

    # No field defaults, so manual __slots__ is safe on the py3.9 floor
    # (defaulted dataclass fields would clash with slot descriptors).
    __slots__ = ("line", "exclusive", "enqueue_time")

    line: int
    exclusive: bool
    enqueue_time: int


class PrefetchBuffer:
    """FIFO buffer of pending prefetch requests."""

    __slots__ = (
        "depth", "_entries", "enqueued", "discarded_in_cache",
        "discarded_outstanding", "full_stalls",
    )

    def __init__(self, depth: int) -> None:
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.depth = depth
        self._entries: Deque[PrefetchEntry] = deque()
        self.enqueued = 0
        self.discarded_in_cache = 0
        self.discarded_outstanding = 0
        self.full_stalls = 0

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def push(self, entry: PrefetchEntry) -> None:
        if self.is_full:
            raise OverflowError("prefetch buffer full")
        self._entries.append(entry)
        self.enqueued += 1

    def pop(self) -> PrefetchEntry:
        if not self._entries:
            raise IndexError("prefetch buffer empty")
        return self._entries.popleft()

    def head(self) -> Optional[PrefetchEntry]:
        return self._entries[0] if self._entries else None
