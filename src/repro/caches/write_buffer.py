"""Write buffer.

The DASH processor environment puts a 16-entry write buffer between the
primary and secondary caches.  Under release consistency, writes retire
from the buffer in FIFO order while the processor keeps running, reads
bypass buffered writes, and the lockup-free secondary cache pipelines
several outstanding ownership requests.  A *release* entry (unlock, flag
set, barrier arrival) may not issue until every earlier write has fully
completed, including invalidation acknowledgements.

Under sequential consistency the buffer is unused: the processor stalls
on each write until it retires (Section 4.1).

This module is the pure bookkeeping structure; the drain engine that
issues ownership requests lives in :mod:`repro.system.memiface`.
"""

from __future__ import annotations

from typing import Callable, Deque, List, Optional
from collections import deque


class WriteEntry:
    """One buffered write (or release marker).

    Packed ``__slots__`` storage: one is allocated per buffered write,
    and the drain engine touches ``line``/``issued`` on every expiry
    sweep.
    """

    __slots__ = ("line", "enqueue_time", "is_release", "on_retire", "issued")

    def __init__(
        self,
        line: int,
        enqueue_time: int,
        is_release: bool = False,
        on_retire: Optional[Callable[[int], None]] = None,
        issued: bool = False,
    ) -> None:
        self.line = line
        self.enqueue_time = enqueue_time
        self.is_release = is_release
        #: Invoked with the retire time once ownership is acquired.
        #: Releases use it to perform the actual synchronization release.
        self.on_retire = on_retire
        self.issued = issued

    def __repr__(self) -> str:
        return (
            f"WriteEntry(line={self.line:#x}, "
            f"enqueue_time={self.enqueue_time}, "
            f"is_release={self.is_release}, issued={self.issued})"
        )


class WriteBuffer:
    """FIFO write buffer with a bounded number of in-flight retirements."""

    __slots__ = (
        "depth", "max_outstanding", "_entries", "_inflight_completions",
        "enqueued", "full_stalls", "on_event",
    )

    def __init__(
        self,
        depth: int,
        max_outstanding: int,
        on_event: Optional[Callable[[str, WriteEntry], None]] = None,
    ) -> None:
        if depth <= 0 or max_outstanding <= 0:
            raise ValueError("depth and max_outstanding must be positive")
        self.depth = depth
        self.max_outstanding = max_outstanding
        self._entries: Deque[WriteEntry] = deque()
        #: Completion times (incl. acks) of writes that have issued but
        #: whose invalidations may still be in flight.
        self._inflight_completions: List[int] = []
        self.enqueued = 0
        self.full_stalls = 0
        #: Observer invoked as ``on_event("push"|"issue"|"retire", entry)``
        #: at each buffer transition; used by the memory-event trace
        #: recorder.  ``None`` (the default) records nothing.
        self.on_event = on_event

    # -- occupancy ---------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.depth

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def outstanding_issues(self) -> int:
        return sum(1 for entry in self._entries if entry.issued)

    # -- queue operations ----------------------------------------------------

    def push(self, entry: WriteEntry) -> None:
        if self.is_full:
            raise OverflowError("write buffer full")
        self._entries.append(entry)
        self.enqueued += 1
        if self.on_event is not None:
            self.on_event("push", entry)

    def head(self) -> Optional[WriteEntry]:
        return self._entries[0] if self._entries else None

    def next_issuable(self) -> Optional[WriteEntry]:
        """Oldest unissued entry that may issue now, honouring:

        * the in-flight cap (lockup-free MSHR budget), and
        * release ordering — a release may only issue when it is at the
          head and nothing earlier is still in flight.
        """
        if self.outstanding_issues >= self.max_outstanding:
            return None
        for position, entry in enumerate(self._entries):
            if entry.issued:
                continue
            if entry.is_release:
                if position == 0 and not self.pending_completions_before(0):
                    return entry
                return None
            return entry
        return None

    def pending_completions_before(self, _position: int) -> bool:
        """True if earlier-issued writes have not fully completed yet.

        ``record_completion`` / ``ack_horizon`` track completion times of
        issued writes; callers compare against the current time.
        """
        return bool(self._inflight_completions)

    def mark_issued(self, entry: WriteEntry) -> None:
        entry.issued = True
        if self.on_event is not None:
            self.on_event("issue", entry)

    def retire_head(self) -> WriteEntry:
        """Pop the head entry (it must have issued)."""
        if not self._entries:
            raise IndexError("write buffer empty")
        entry = self._entries[0]
        if not entry.issued:
            raise RuntimeError("retiring an unissued write")
        entry = self._entries.popleft()
        if self.on_event is not None:
            self.on_event("retire", entry)
        return entry

    # -- ack tracking --------------------------------------------------------

    def record_inflight_completion(self, complete_time: int) -> None:
        self._inflight_completions.append(complete_time)

    def expire_completions(self, now: int) -> None:
        """Drop completion records whose acks have all arrived."""
        self._inflight_completions = [
            t for t in self._inflight_completions if t > now
        ]

    def ack_horizon(self) -> int:
        """Latest completion time of any issued-but-unacked write."""
        return max(self._inflight_completions, default=0)
