"""Cache hierarchy structures: caches, MSHRs, write and prefetch buffers."""

from repro.caches.cache import DirectMappedCache, LineState
from repro.caches.mshr import MSHRTable, OutstandingMiss
from repro.caches.prefetch_buffer import PrefetchBuffer, PrefetchEntry
from repro.caches.write_buffer import WriteBuffer, WriteEntry

__all__ = [
    "DirectMappedCache",
    "LineState",
    "MSHRTable",
    "OutstandingMiss",
    "PrefetchBuffer",
    "PrefetchEntry",
    "WriteBuffer",
    "WriteEntry",
]
