"""Miss status holding registers (lockup-free cache support).

Lockup-free caches [Kroft 81] let new accesses proceed while misses are
outstanding — a universal requirement for RC, prefetching, and multiple
contexts (Section 7).  The MSHR table tracks every in-flight transaction
per line so that:

* a demand reference to a line with an outstanding prefetch *combines*
  with it instead of sending duplicate messages (Section 5.1), and
* a second context's miss to the same line piggybacks on the first.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class OutstandingMiss:
    """One in-flight fill/ownership transaction for a line.

    Packed ``__slots__`` storage — allocated on every secondary-cache
    miss, probed on every read while any miss is outstanding.
    """

    __slots__ = (
        "line", "exclusive", "issue_time", "complete_time",
        "is_prefetch", "waiters", "combined",
    )

    def __init__(
        self,
        line: int,
        exclusive: bool,
        issue_time: int,
        complete_time: int,
        is_prefetch: bool,
        waiters: Optional[List[Callable[[int], None]]] = None,
        combined: bool = False,
    ) -> None:
        self.line = line
        self.exclusive = exclusive
        self.issue_time = issue_time
        self.complete_time = complete_time
        self.is_prefetch = is_prefetch
        self.waiters = [] if waiters is None else waiters
        #: Set when a demand reference combined with this (prefetch) miss.
        self.combined = combined

    def __repr__(self) -> str:
        return (
            f"OutstandingMiss(line={self.line:#x}, "
            f"exclusive={self.exclusive}, issue_time={self.issue_time}, "
            f"complete_time={self.complete_time}, "
            f"is_prefetch={self.is_prefetch}, combined={self.combined})"
        )


class MSHRTable:
    """Outstanding-transaction table for one node's secondary cache."""

    __slots__ = ("_misses", "combines")

    def __init__(self) -> None:
        self._misses: Dict[int, OutstandingMiss] = {}
        self.combines = 0

    def lookup(self, line: int) -> Optional[OutstandingMiss]:
        return self._misses.get(line)

    def add(self, miss: OutstandingMiss) -> None:
        if miss.line in self._misses:
            raise ValueError(f"line {miss.line:#x} already outstanding")
        self._misses[miss.line] = miss

    def combine(
        self, line: int, waiter: Optional[Callable[[int], None]] = None
    ) -> OutstandingMiss:
        """Attach a demand reference to an outstanding miss for ``line``."""
        miss = self._misses[line]
        miss.combined = True
        self.combines += 1
        if waiter is not None:
            miss.waiters.append(waiter)
        return miss

    def retire(self, line: int) -> OutstandingMiss:
        """Remove and return the completed transaction for ``line``."""
        miss = self._misses.pop(line)
        for waiter in miss.waiters:
            waiter(miss.complete_time)
        return miss

    def __len__(self) -> int:
        return len(self._misses)

    def outstanding_lines(self):
        return list(self._misses)
