"""Fault injection at the interconnect/coherence-protocol boundary.

:class:`FaultInjector` instruments a built
:class:`~repro.system.machine.Machine` the same way the PR-1 coherence
sanitizer does — by rebinding *instance* attributes over the protocol's
transaction entry points (``read``, ``write``, ``prefetch``,
``read_uncached``, ``write_uncached``).  A machine whose fault plan is
empty never installs the injector at all, so the fault-free fast path
stays bit-identical to a machine without the fault layer.

For every access that would actually put a message on the network
(:meth:`~repro.coherence.protocol.CoherenceProtocol.crosses_node_boundary`),
the injector consults the plan's deterministic random stream:

* a **NACK** bounces the request at the home directory: the requester
  pays a header round trip (with real queuing on the bus, links, and
  directory controller), waits out a capped exponential backoff, and
  re-issues;
* a **drop** loses the request in the network: the requester detects it
  by timeout and re-issues (the lost header's bandwidth is still
  charged on the background chain);
* a **delay** holds the response up for a bounded number of pclocks;
* a **duplicate** delivers the response twice, charging bandwidth on
  the path a second time without delaying the original.

Each transaction has a retry *budget* (``plan.backoff.max_retries``);
exhausting it raises :class:`RetryBudgetExceeded`, a
:class:`~repro.sim.engine.SimulationError` the experiment supervisor
classifies as transient.  Because the underlying protocol transaction is
only invoked once — at its final, penalty-shifted issue time — directory
and cache state stay exactly as coherent as in a fault-free run, which
is what lets fault runs pass the PR-1 sanitizer unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.coherence import AccessOutcome
from repro.faults.plan import FaultPlan
from repro.sim.engine import SimulationError


class RetryBudgetExceeded(SimulationError):
    """A transaction was NACKed/dropped more times than its budget."""


@dataclass
class FaultStats:
    """Aggregate fault-injection counters for one run."""

    eligible_transactions: int = 0
    drops_injected: int = 0
    nacks_injected: int = 0
    delays_injected: int = 0
    duplicates_injected: int = 0

    #: Re-issues performed (one per drop or NACK survived).
    retries: int = 0
    #: Largest number of attempts any single transaction needed.
    max_attempts: int = 0
    #: Pclocks of latency added by timeouts, NACK round trips, and
    #: backoff waits (the retry component of added latency).
    retry_cycles: int = 0
    #: Pclocks of latency added by delayed responses.
    delay_cycles: int = 0
    #: Retries broken down by access kind (read/write/prefetch/...).
    retries_by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def faults_injected(self) -> int:
        return (
            self.drops_injected
            + self.nacks_injected
            + self.delays_injected
            + self.duplicates_injected
        )

    @property
    def added_cycles(self) -> int:
        return self.retry_cycles + self.delay_cycles

    def summary(self) -> str:
        return (
            f"{self.faults_injected} faults over "
            f"{self.eligible_transactions} network transactions: "
            f"{self.nacks_injected} NACKs, {self.drops_injected} drops, "
            f"{self.delays_injected} delays, "
            f"{self.duplicates_injected} duplicates; "
            f"{self.retries} retries (worst case {self.max_attempts} "
            f"attempts), +{self.added_cycles} pclocks"
        )


class FaultInjector:
    """Per-machine message fault injection with NACK/retry semantics."""

    def __init__(self, machine, plan: FaultPlan, seed_mix: int = 0) -> None:
        if plan.is_empty:
            raise ValueError("refusing to install an empty fault plan")
        self.machine = machine
        self.protocol = machine.protocol
        self.net = machine.interconnect
        self.plan = plan
        self.stats = FaultStats()
        # One deterministic stream per (plan, machine seed): the call
        # sequence is deterministic, so the injected faults are too.
        self._rng = random.Random(plan.seed * 1_000_003 + seed_mix)
        self._installed = False

    # -- instrumentation ----------------------------------------------------

    def install(self) -> "FaultInjector":
        """Wrap the protocol's transaction entry points.

        Installed *after* the sanitizer (when both are enabled) so the
        sanitizer checks the real, single protocol transaction and the
        injector only shifts its issue time and response latency.
        """
        if self._installed:
            return self
        protocol = self.protocol
        for kind in ("read", "write", "read_uncached", "write_uncached"):
            self._wrap(protocol, kind)
        self._wrap_prefetch(protocol)
        self._installed = True
        return self

    def _wrap(self, protocol, kind: str) -> None:
        original = getattr(protocol, kind)
        injector = self

        def wrapper(node, addr, time, **kwargs):
            if not protocol.crosses_node_boundary(kind, node, addr):
                return original(node, addr, time, **kwargs)
            return injector._faulted(
                kind, node, addr, time,
                lambda t: original(node, addr, t, **kwargs),
            )

        setattr(protocol, kind, wrapper)

    def _wrap_prefetch(self, protocol) -> None:
        original = protocol.prefetch
        injector = self

        def wrapper(node, addr, exclusive, time):
            if not protocol.crosses_node_boundary(
                "prefetch", node, addr, exclusive=exclusive
            ):
                return original(node, addr, exclusive, time)
            return injector._faulted(
                "prefetch", node, addr, time,
                lambda t: original(node, addr, exclusive, t),
            )

        protocol.prefetch = wrapper

    # -- the fault path ------------------------------------------------------

    def _faulted(self, kind, node, addr, time, invoke) -> Optional[AccessOutcome]:
        plan = self.plan
        stats = self.stats
        rng = self._rng
        stats.eligible_transactions += 1
        line = self.protocol.line_of(addr)
        home = self.protocol.home_of(line)

        # Request side: NACKs and drops force re-issues with backoff.
        penalty = 0
        attempts = 1
        while True:
            roll = rng.random()
            if kind not in ("read_uncached", "write_uncached") and roll < plan.nack_rate:
                # Directory transaction buffer full: bounce the request.
                stats.nacks_injected += 1
                self.machine.directories[home].note_nack(line)
                cost = plan.nack_round_trip_cycles
                cost += self.net.charge_nack(node, home, time + penalty)
            elif roll < plan.nack_rate + plan.drop_rate:
                # Request lost in the network; detected by timeout.  The
                # dead header still consumed bandwidth on the way out.
                stats.drops_injected += 1
                self.net.charge_bus(node, time + penalty, data=False, background=True)
                if home != node:
                    self.net.charge_hop(
                        node, home, time + penalty, data=False, background=True
                    )
                cost = plan.drop_timeout_cycles
            else:
                break
            if attempts > plan.backoff.max_retries:
                raise RetryBudgetExceeded(
                    f"{kind} of addr {addr:#x} by node {node} at t={time} "
                    f"gave up after {attempts} attempts "
                    f"(budget {plan.backoff.max_retries} retries, "
                    f"{penalty + cost} pclocks burned) — the network is "
                    "too hostile for forward progress"
                )
            cost += plan.backoff.delay_for(attempts - 1)
            penalty += cost
            stats.retries += 1
            stats.retry_cycles += cost
            stats.retries_by_kind[kind] = stats.retries_by_kind.get(kind, 0) + 1
            attempts += 1
        stats.max_attempts = max(stats.max_attempts, attempts)

        outcome = invoke(time + penalty)
        if outcome is None:  # prefetch discarded (cannot happen after probe)
            return None

        # Response side: delays shift arrival, duplicates burn bandwidth.
        retire, complete = outcome.retire, outcome.complete
        if rng.random() < plan.delay_rate:
            held = rng.randint(1, plan.delay_max_cycles)
            stats.delays_injected += 1
            stats.delay_cycles += held
            retire += held
            complete += held
        if rng.random() < plan.duplicate_rate:
            stats.duplicates_injected += 1
            self.net.charge_duplicate(home, node, retire, data=True)
        if (retire, complete) == (outcome.retire, outcome.complete):
            return outcome
        return AccessOutcome(retire, complete, outcome.access_class)
