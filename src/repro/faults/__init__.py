"""Fault injection, retry/backoff, and robustness tooling.

The package has three pieces:

* :class:`FaultPlan` — a frozen, seedable description of which message
  faults to inject (drops, delays, duplicates, directory NACKs) and the
  retry/backoff policy that survives them;
* :class:`FaultInjector` — installs the plan at the interconnect/
  protocol boundary of a built machine (empty plans install nothing,
  keeping fault-free runs bit-identical);
* :class:`Watchdog` — wall-clock heartbeats and timeouts for the event
  engine, so hung configurations fail fast with a progress trail.
"""

from repro.faults.injector import FaultInjector, FaultStats, RetryBudgetExceeded
from repro.faults.plan import BackoffPolicy, FaultPlan
from repro.faults.watchdog import (
    Heartbeat,
    Watchdog,
    WatchdogTimeout,
    read_heartbeat_file,
    write_heartbeat_file,
)

__all__ = [
    "BackoffPolicy",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "Heartbeat",
    "RetryBudgetExceeded",
    "Watchdog",
    "WatchdogTimeout",
    "read_heartbeat_file",
    "write_heartbeat_file",
]
