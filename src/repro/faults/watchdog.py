"""Wall-clock/event-count watchdog with progress heartbeats.

A :class:`Watchdog` attaches to an :class:`~repro.sim.engine.EventEngine`
via :meth:`~repro.sim.engine.EventEngine.set_heartbeat`: every
``heartbeat_every`` fired events the engine calls back into the
watchdog, which records a :class:`Heartbeat` (events fired, simulated
time, wall seconds), optionally notifies a progress callback, and —
when a wall-clock limit is configured — aborts the run with
:class:`WatchdogTimeout` instead of letting a hung configuration stall
an entire sweep.

The timeout message carries the recent heartbeat trail (event and
simulated-time progress over wall time), so a stalled run is
distinguishable from a merely slow one at a glance: a livelock burns
events without advancing simulated time, a hang does neither.
"""

from __future__ import annotations

import os
import time as _time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Deque, Optional, Union

from repro.sim.engine import EventEngine, SimulationError


class WatchdogTimeout(SimulationError):
    """A run exceeded its wall-clock budget without completing."""


@dataclass(frozen=True)
class Heartbeat:
    """One progress sample taken every ``heartbeat_every`` events."""

    events: int
    sim_time: int
    wall_seconds: float

    def __str__(self) -> str:
        return (
            f"{self.wall_seconds:8.2f}s  {self.events:>12d} events  "
            f"sim t={self.sim_time}"
        )


def write_heartbeat_file(path: Union[str, Path], beat: Heartbeat) -> None:
    """Publish one heartbeat to ``path`` for out-of-process observers.

    Written via a sibling temp file + :func:`os.replace` so a reader can
    never observe a torn record; the file's mtime doubles as the
    liveness signal (a worker that stops firing events stops refreshing
    it).  Best-effort: I/O failures must never abort the watched run.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        tmp.write_text(
            f"{beat.events} {beat.sim_time} {beat.wall_seconds:.3f}\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
    except OSError:
        pass


def read_heartbeat_file(path: Union[str, Path]) -> Optional[Heartbeat]:
    """Parse a heartbeat published by :func:`write_heartbeat_file`
    (``None`` when absent, torn, or unreadable)."""
    try:
        fields = Path(path).read_text(encoding="utf-8").split()
        return Heartbeat(
            events=int(fields[0]),
            sim_time=int(fields[1]),
            wall_seconds=float(fields[2]),
        )
    except (OSError, ValueError, IndexError):
        return None


class Watchdog:
    """Aborts runs that stop making wall-clock progress."""

    def __init__(
        self,
        wall_clock_limit_s: Optional[float] = None,
        heartbeat_every: int = 250_000,
        on_heartbeat: Optional[Callable[[Heartbeat], None]] = None,
        clock: Callable[[], float] = _time.monotonic,
        trail_depth: int = 16,
        heartbeat_path: Optional[Union[str, Path]] = None,
    ) -> None:
        if wall_clock_limit_s is not None and wall_clock_limit_s < 0:
            raise ValueError("wall-clock limit must be nonnegative")
        if heartbeat_every <= 0:
            raise ValueError("heartbeat interval must be positive")
        self.wall_clock_limit_s = wall_clock_limit_s
        self.heartbeat_every = heartbeat_every
        self.on_heartbeat = on_heartbeat
        self.clock = clock
        self.heartbeats: Deque[Heartbeat] = deque(maxlen=trail_depth)
        #: When set, every heartbeat is also published to this file so
        #: an out-of-process supervisor can tell a hung worker (stale
        #: file) from a slow-but-progressing one (fresh file).
        self.heartbeat_path = Path(heartbeat_path) if heartbeat_path else None
        self._started_at: Optional[float] = None

    def attach(self, engine: EventEngine) -> "Watchdog":
        """Arm the watchdog on ``engine`` and start the wall clock."""
        self._started_at = self.clock()
        engine.set_heartbeat(self._tick, every=self.heartbeat_every)
        return self

    def detach(self, engine: EventEngine) -> None:
        engine.set_heartbeat(None)

    @property
    def elapsed_s(self) -> float:
        if self._started_at is None:
            return 0.0
        return self.clock() - self._started_at

    def _tick(self, engine: EventEngine) -> None:
        if self._started_at is None:
            self._started_at = self.clock()
        beat = Heartbeat(
            events=engine.events_processed,
            sim_time=engine.now,
            wall_seconds=self.clock() - self._started_at,
        )
        self.heartbeats.append(beat)
        if self.heartbeat_path is not None:
            write_heartbeat_file(self.heartbeat_path, beat)
        if self.on_heartbeat is not None:
            self.on_heartbeat(beat)
        limit = self.wall_clock_limit_s
        if limit is not None and beat.wall_seconds > limit:
            rate = beat.events / beat.wall_seconds if beat.wall_seconds else 0.0
            trail = "\n".join(f"  {b}" for b in self.heartbeats)
            raise WatchdogTimeout(
                f"no completion after {beat.wall_seconds:.2f}s wall-clock "
                f"(limit {limit:.2f}s): {beat.events} events fired, "
                f"sim t={beat.sim_time}, {rate:,.0f} events/s, "
                f"{engine.pending} events pending\n"
                f"heartbeat trail (oldest first):\n{trail}"
            )
