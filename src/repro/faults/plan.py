"""Deterministic, seedable fault plans.

A :class:`FaultPlan` describes *which* message-level faults to inject at
the interconnect/protocol boundary and *how often*:

* **drops** — a request message is lost in the network and must be
  re-sent after a detection timeout;
* **delays** — a response message is held up for a bounded number of
  extra pclocks (models transient congestion or an adaptive route);
* **duplicates** — a message is delivered twice, charging its bandwidth
  on the path a second time (queuing pressure, no direct latency);
* **NACKs** — the home directory bounces the request because its
  transaction buffer is full (the real DASH protocol NACKs and retries
  under directory contention), and the requester retries after a capped
  exponential backoff.

Plans are frozen dataclasses: hashable (so they can live inside
:class:`~repro.config.MachineConfig` and participate in experiment
memoization keys) and immutable (one plan can be shared across a sweep).
All randomness is drawn from a private ``random.Random`` stream seeded
from ``(plan.seed, machine.seed)``, so a given (plan, config, program)
triple always injects the same faults at the same points — fault runs
are as reproducible as fault-free runs.

An *empty* plan (all rates zero) is never installed at all, which keeps
the no-fault fast path bit-identical to a machine without the fault
layer (regression-tested in ``tests/test_faults.py``).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff between retries of one transaction.

    Attempt ``k`` (0-based) waits ``min(initial * multiplier**k, cap)``
    pclocks before re-issuing; after ``max_retries`` failed attempts the
    transaction's retry budget is exhausted and the run aborts with
    :class:`~repro.faults.injector.RetryBudgetExceeded`.
    """

    initial_cycles: int = 16
    multiplier: int = 2
    cap_cycles: int = 512
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.initial_cycles < 0 or self.cap_cycles < 0:
            raise ValueError("backoff cycles must be nonnegative")
        if self.multiplier < 1:
            raise ValueError("backoff multiplier must be >= 1")
        if self.max_retries < 0:
            raise ValueError("retry budget must be nonnegative")

    def delay_for(self, attempt: int) -> int:
        """Backoff before re-issuing after the ``attempt``-th failure."""
        if attempt < 0:
            raise ValueError("attempt must be nonnegative")
        delay = self.initial_cycles * self.multiplier ** attempt
        return min(delay, self.cap_cycles)


@dataclass(frozen=True)
class FaultPlan:
    """Rates and parameters for deterministic fault injection."""

    seed: int = 0
    #: Probability a network-bound request message is dropped (per
    #: attempt; a retried request rolls again).
    drop_rate: float = 0.0
    #: Probability the home directory NACKs a request (per attempt).
    nack_rate: float = 0.0
    #: Probability a response message is delayed.
    delay_rate: float = 0.0
    #: Probability a message is delivered twice (bandwidth only).
    duplicate_rate: float = 0.0

    #: Delayed responses arrive 1..delay_max_cycles pclocks late.
    delay_max_cycles: int = 24
    #: Pclocks until a dropped request is detected and re-sent.
    drop_timeout_cycles: int = 96
    #: Base round-trip pclocks of a NACK reply (requester to home and
    #: back, header-only), before queuing delays.
    nack_round_trip_cycles: int = 30

    backoff: BackoffPolicy = BackoffPolicy()

    def __post_init__(self) -> None:
        for name in ("drop_rate", "nack_rate", "delay_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.delay_max_cycles <= 0:
            raise ValueError("delay_max_cycles must be positive")
        if self.drop_timeout_cycles <= 0:
            raise ValueError("drop_timeout_cycles must be positive")
        if self.nack_round_trip_cycles < 0:
            raise ValueError("nack_round_trip_cycles must be nonnegative")
        if (self.drop_rate or self.nack_rate) and self.backoff.max_retries == 0:
            raise ValueError(
                "drops/NACKs require a nonzero retry budget to make progress"
            )

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (no layer is installed)."""
        return (
            self.drop_rate == 0.0
            and self.nack_rate == 0.0
            and self.delay_rate == 0.0
            and self.duplicate_rate == 0.0
        )

    @classmethod
    def empty(cls, seed: int = 0) -> "FaultPlan":
        return cls(seed=seed)

    @classmethod
    def smoke(cls, seed: int = 0) -> "FaultPlan":
        """A light adversity mix for CI: every fault kind fires, but the
        machine completes comfortably within the retry budget."""
        return cls(
            seed=seed,
            drop_rate=0.01,
            nack_rate=0.04,
            delay_rate=0.05,
            duplicate_rate=0.02,
        )

    @classmethod
    def heavy(cls, seed: int = 0) -> "FaultPlan":
        """A hostile network: high NACK pressure and frequent drops."""
        return cls(
            seed=seed,
            drop_rate=0.05,
            nack_rate=0.15,
            delay_rate=0.15,
            duplicate_rate=0.05,
            backoff=BackoffPolicy(max_retries=12),
        )

    @classmethod
    def preset(cls, name: str, seed: int = 0) -> "FaultPlan":
        """Look up a named plan (``none``/``empty``, ``smoke``, ``heavy``)."""
        builders = {
            "none": cls.empty,
            "empty": cls.empty,
            "smoke": cls.smoke,
            "heavy": cls.heavy,
        }
        try:
            return builders[name](seed=seed)
        except KeyError:
            raise KeyError(f"unknown fault plan preset {name!r}") from None
