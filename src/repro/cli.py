"""Command-line interface.

``repro-1991 table1`` / ``table2`` / ``fig2`` .. ``fig6`` / ``summary`` /
``all`` regenerate the paper's tables and figures at a chosen workload
scale and print them next to the paper's published values.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import (
    ExperimentRunner,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    format_bars,
    format_table,
    summary_speedups,
    table1,
    table2,
)
from repro.experiments import paper_data


def _print_table1() -> None:
    probes = table1()
    rows = [
        (p.operation, p.expected, p.measured, "ok" if p.matches else "MISMATCH")
        for p in probes
    ]
    print(
        format_table(
            "Table 1: memory operation latencies (pclocks, no contention)",
            ["operation", "paper", "measured", ""],
            rows,
        )
    )


def _print_table2(runner: ExperimentRunner) -> None:
    rows = []
    for row in table2(runner):
        paper = paper_data.TABLE2[row.app]
        rows.append(
            (
                row.app,
                f"{row.useful_kcycles:.0f}",
                paper["useful_kcycles"],
                f"{row.shared_reads_k:.0f}",
                paper["shared_reads_k"],
                f"{row.shared_writes_k:.0f}",
                paper["shared_writes_k"],
                row.locks,
                paper["locks"],
                row.barriers,
                paper["barriers"],
                f"{row.shared_kbytes:.0f}",
                paper["shared_kbytes"],
            )
        )
    print(
        format_table(
            f"Table 2: general statistics (measured at scale={runner.scale!r} "
            "vs paper's full workloads)",
            [
                "app",
                "busy(K)",
                "paper",
                "reads(K)",
                "paper",
                "writes(K)",
                "paper",
                "locks",
                "paper",
                "barriers",
                "paper",
                "KB",
                "paper",
            ],
            rows,
        )
    )


_FIGURES = {
    "fig2": ("Figure 2: effect of caching shared data", figure2,
             paper_data.FIGURE2_TOTALS, False),
    "fig3": ("Figure 3: effect of relaxing the consistency model", figure3,
             paper_data.FIGURE3_TOTALS, False),
    "fig4": ("Figure 4: effect of prefetching", figure4,
             paper_data.FIGURE4_TOTALS, False),
    "fig5": ("Figure 5: effect of multiple contexts (SC)", figure5,
             paper_data.FIGURE5_TOTALS, True),
    "fig6": ("Figure 6: combining the schemes (switch latency 4)", figure6,
             paper_data.FIGURE6_TOTALS, True),
}


def _print_figure(name: str, runner: ExperimentRunner) -> None:
    title, fn, paper, multi = _FIGURES[name]
    bars = fn(runner)
    print(format_bars(title, bars, paper_totals=paper, multi_context=multi))


def _print_summary(runner: ExperimentRunner) -> None:
    speedups = summary_speedups(runner)
    rows = []
    for app, values in speedups.items():
        rows.append(
            (
                app,
                values["cache_over_uncached"],
                values["rc_over_sc"],
                values["rc_pf_over_sc"],
                values["combined_over_uncached"],
            )
        )
    print(
        format_table(
            "Section 7 headline speedups (combined best is over the "
            "uncached baseline; paper reports 4-7x)",
            ["app", "cache", "RC/SC", "RC+pf/SC", "combined"],
            rows,
        )
    )


_CHECKS = ("lint", "races", "litmus", "invariants")
_CHECK_APPS = ("MP3D", "LU", "PTHOR")


def _check_programs(app: str):
    """Small (app name, program, processes) triples for ``repro check``."""
    from repro.apps.lu.app import LUConfig, lu_program
    from repro.apps.mp3d.app import MP3DConfig, mp3d_program
    from repro.apps.pthor.app import PTHORConfig, pthor_program

    builders = {
        "MP3D": lambda: mp3d_program(
            MP3DConfig(num_particles=200, space_x=5, space_y=8,
                       space_z=3, time_steps=2)
        ),
        "LU": lambda: lu_program(LUConfig(n=16)),
        "PTHOR": lambda: pthor_program(
            PTHORConfig(num_gates=200, clock_cycles=2)
        ),
    }
    names = _CHECK_APPS if app == "all" else (app,)
    return [(name, builders[name](), 8) for name in names]


def run_check(app: str, checks: List[str], verbose: bool = False) -> int:
    """The ``repro check`` subcommand: op-stream lint, race detection,
    litmus consistency checks, and a sanitized simulation.  Returns a
    nonzero exit status on lint errors, litmus violations, or invariant
    failures; data races are reported but do not fail the check (MP3D's
    move-phase races are benign and acknowledged by the paper)."""
    from repro.analysis.executor import LogicalExecutor
    from repro.analysis.oplint import OpLinter
    from repro.analysis.race_detector import RaceDetector
    from repro.sim.engine import SimulationError

    failed = False

    if "lint" in checks or "races" in checks:
        for name, program, processes in _check_programs(app):
            linter = OpLinter()
            detector = RaceDetector()
            listeners = []
            if "lint" in checks:
                listeners.append(linter)
            if "races" in checks:
                listeners.append(detector)
            summary = LogicalExecutor(
                program, processes, listeners=listeners, strict=False
            ).run()
            print(f"[{name}] {summary.ops_executed} ops from "
                  f"{summary.num_threads} threads")
            if "lint" in checks:
                print(f"  {linter.format_issues()}")
                if linter.errors:
                    failed = True
            if "races" in checks:
                print(f"  {detector.format_reports()}")
                if verbose:
                    for report in detector.reports:
                        print(f"    {report}")

    if "litmus" in checks:
        from repro.analysis.litmus import run_suite

        results = run_suite()
        bad = [result for result in results if not result.ok]
        print(f"[litmus] {len(results)} (test, model) pairs, "
              f"{len(bad)} violation(s)")
        for result in bad:
            print(f"  {result.explain()}")
            failed = True
        if verbose:
            for result in results:
                print(f"  {result.test.name} {result.model.name}: "
                      f"{sorted(result.observed)}")

    if "invariants" in checks:
        from repro.config import dash_scaled_config
        from repro.system import Machine

        for name, program, processes in _check_programs(app):
            config = dash_scaled_config(
                num_processors=processes, sanitize=True
            )
            machine = Machine(config)
            machine.load(program)
            try:
                machine.run()
            except SimulationError as exc:
                print(f"[invariants] {name}: FAILED\n{exc}")
                failed = True
            else:
                print(f"[invariants] {name}: ok "
                      f"({machine.sanitizer.checks_performed} checks)")

    print("check: FAILED" if failed else "check: ok")
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-1991",
        description=(
            "Regenerate the tables and figures of Gupta et al., "
            "'Comparative Evaluation of Latency Reducing and Tolerating "
            "Techniques' (ISCA 1991)."
        ),
    )
    parser.add_argument(
        "what",
        choices=["table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6",
                 "summary", "all", "check"],
        help="which artifact to regenerate, or 'check' to run the "
             "analysis suite (lint, races, litmus, invariants)",
    )
    parser.add_argument(
        "--scale",
        choices=["bench", "default", "paper"],
        default="default",
        help="workload scale (paper = the full data sets; slow)",
    )
    parser.add_argument(
        "--app",
        choices=["MP3D", "LU", "PTHOR", "all"],
        default="all",
        help="application(s) for the 'check' subcommand",
    )
    parser.add_argument(
        "--checks",
        default="lint,races,litmus,invariants",
        help="comma-separated subset of checks to run: "
             + ",".join(_CHECKS),
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log each simulation run"
    )
    args = parser.parse_args(argv)

    if args.what == "check":
        checks = [c.strip() for c in args.checks.split(",") if c.strip()]
        unknown = set(checks) - set(_CHECKS)
        if unknown:
            parser.error(f"unknown checks: {', '.join(sorted(unknown))}")
        return run_check(args.app, checks, verbose=args.verbose)

    runner = ExperimentRunner(scale=args.scale, verbose=args.verbose)
    targets = (
        ["table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "summary"]
        if args.what == "all"
        else [args.what]
    )
    for target in targets:
        if target == "table1":
            _print_table1()
        elif target == "table2":
            _print_table2(runner)
        elif target == "summary":
            _print_summary(runner)
        else:
            _print_figure(target, runner)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
