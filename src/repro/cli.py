"""Command-line interface.

``repro-1991 table1`` / ``table2`` / ``fig2`` .. ``fig6`` / ``summary`` /
``all`` regenerate the paper's tables and figures at a chosen workload
scale and print them next to the paper's published values.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import (
    ExperimentRunner,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    format_bars,
    format_table,
    summary_speedups,
    table1,
    table2,
)
from repro.experiments import paper_data


def _print_table1() -> None:
    probes = table1()
    rows = [
        (p.operation, p.expected, p.measured, "ok" if p.matches else "MISMATCH")
        for p in probes
    ]
    print(
        format_table(
            "Table 1: memory operation latencies (pclocks, no contention)",
            ["operation", "paper", "measured", ""],
            rows,
        )
    )


def _print_table2(runner: ExperimentRunner) -> None:
    rows = []
    for row in table2(runner):
        paper = paper_data.TABLE2[row.app]
        rows.append(
            (
                row.app,
                f"{row.useful_kcycles:.0f}",
                paper["useful_kcycles"],
                f"{row.shared_reads_k:.0f}",
                paper["shared_reads_k"],
                f"{row.shared_writes_k:.0f}",
                paper["shared_writes_k"],
                row.locks,
                paper["locks"],
                row.barriers,
                paper["barriers"],
                f"{row.shared_kbytes:.0f}",
                paper["shared_kbytes"],
            )
        )
    print(
        format_table(
            f"Table 2: general statistics (measured at scale={runner.scale!r} "
            "vs paper's full workloads)",
            [
                "app",
                "busy(K)",
                "paper",
                "reads(K)",
                "paper",
                "writes(K)",
                "paper",
                "locks",
                "paper",
                "barriers",
                "paper",
                "KB",
                "paper",
            ],
            rows,
        )
    )


_FIGURES = {
    "fig2": ("Figure 2: effect of caching shared data", figure2,
             paper_data.FIGURE2_TOTALS, False),
    "fig3": ("Figure 3: effect of relaxing the consistency model", figure3,
             paper_data.FIGURE3_TOTALS, False),
    "fig4": ("Figure 4: effect of prefetching", figure4,
             paper_data.FIGURE4_TOTALS, False),
    "fig5": ("Figure 5: effect of multiple contexts (SC)", figure5,
             paper_data.FIGURE5_TOTALS, True),
    "fig6": ("Figure 6: combining the schemes (switch latency 4)", figure6,
             paper_data.FIGURE6_TOTALS, True),
}


def _print_figure(name: str, runner: ExperimentRunner) -> None:
    title, fn, paper, multi = _FIGURES[name]
    bars = fn(runner)
    print(format_bars(title, bars, paper_totals=paper, multi_context=multi))


def _print_summary(runner: ExperimentRunner) -> None:
    speedups = summary_speedups(runner)
    rows = []
    for app, values in speedups.items():
        rows.append(
            (
                app,
                values["cache_over_uncached"],
                values["rc_over_sc"],
                values["rc_pf_over_sc"],
                values["combined_over_uncached"],
            )
        )
    print(
        format_table(
            "Section 7 headline speedups (combined best is over the "
            "uncached baseline; paper reports 4-7x)",
            ["app", "cache", "RC/SC", "RC+pf/SC", "combined"],
            rows,
        )
    )


#: One-line description per analysis pass, in run order.  ``--list-checks``
#: prints this; keep it in sync when adding a pass.
_CHECK_DESCRIPTIONS = {
    "lint": "structural lint of each app's op streams (op shape, sync pairing)",
    "races": "happens-before data-race detection over the op streams",
    "litmus": "consistency litmus matrix through the full machine",
    "invariants": "sanitized smoke simulation (SWMR, inclusion, precision)",
    "faults": "smoke apps under seeded message faults, sanitizer armed",
    "model": "exhaustive model check of the abstract directory protocol",
    "lockorder": "static lock-order deadlock and barrier analysis",
    "srclint": "determinism + hot-path lint over the simulator source",
    "protolint": "static completeness/determinism/liveness check of the "
                 "declarative protocol transition table",
    "protomatrix": "model check + protolint over every registered "
                   "protocol spec (directory-msi, mesi, moesi)",
    "protodiff": "differential protocol equivalence: product-compose two "
                 "specs' reachable models and prove (or refute with a "
                 "minimal witness) observational equivalence",
    "latbound": "static per-transaction latency envelopes derived from "
                "the protocol table, with optional trace audit",
    "trace": "axiomatic trace conformance (litmus matrix + smoke runs)",
    "layout": "static memory-layout lint of the bundled apps",
    "chaos": "crash-tolerance drill: SIGKILL pool workers mid-sweep, "
             "corrupt the journal tail, resume, verify bit-identity",
}

_CHECKS = tuple(_CHECK_DESCRIPTIONS)

#: What ``repro-1991 check`` runs with no selection flags at all: the
#: fast dynamic passes.  ``--all`` is the documented way to run every
#: pass in ``_CHECKS``.
_DEFAULT_CHECKS = ("lint", "races", "litmus", "invariants")

#: Seeded consistency bugs for ``--trace-mutate`` (the tracecheck
#: analogue of ``--mc-mutate``).
_TRACE_MUTATIONS = (
    "drop-inval-ack", "release-overtakes-writes", "forward-unissued-write",
)

#: Seeded transition-table defects for ``--proto-mutate`` (the
#: protolint analogue of ``--mc-mutate``).
_PROTO_MUTATIONS = ("drop-transition", "overlap-rule", "orphan-state")

#: Seeded latency-accounting defects for ``--lat-mutate`` (the latbound
#: analogue).  The first two are caught statically (hop-continuity and
#: directory-single-pass); the third survives every static pass by
#: design and is caught by the trace audit.
_LAT_MUTATIONS = (
    "uncharged-hop", "double-charged-directory-occupancy",
    "envelope-too-tight",
)

#: Seeded protocol defects for ``--diff-mutate`` (the protodiff
#: analogue): applied to the *right* spec of the ``--proto-diff`` pair,
#: each must be refuted with a minimal witness trace.
_DIFF_MUTATIONS = ("mesi-without-e-writeback",)

#: CLI flags associated with each check, for ``--list-checks``.  Checks
#: with no dedicated flag are reachable via ``--checks <name>`` (and the
#: starred default subset runs them with no flags at all).
_CHECK_FLAGS = {
    "lint": (),
    "races": (),
    "litmus": (),
    "invariants": (),
    "faults": ("--faults",),
    "model": ("--model-check", "--mc-mutate", "--mc-fingerprint"),
    "lockorder": ("--lock-order",),
    "srclint": ("--lint-src",),
    "protolint": ("--proto-lint", "--proto-mutate", "--proto-fingerprint"),
    "protomatrix": ("--proto-matrix", "--proto-matrix-fingerprints"),
    "protodiff": ("--proto-diff", "--diff-mutate"),
    "latbound": ("--lat-bound", "--lat-audit", "--lat-mutate",
                 "--lat-fingerprint"),
    "trace": ("--trace-check", "--trace-mutate"),
    "layout": ("--layout-lint",),
    "chaos": ("--chaos",),
}
_CHECK_APPS = ("MP3D", "LU", "PTHOR")


def _check_programs(app: str):
    """Small (app name, program, processes) triples for ``repro check``."""
    from repro.experiments.registry import SMOKE_PROCESSES, smoke_program

    names = _CHECK_APPS if app == "all" else (app,)
    return [(name, smoke_program(name), SMOKE_PROCESSES) for name in names]


def run_fault_matrix(
    app: str,
    fault_level: str,
    seed: int = 0,
    max_events: Optional[int] = None,
    verbose: bool = False,
) -> int:
    """The ``check --faults`` matrix: run each smoke app under a seeded
    fault plan with the coherence sanitizer armed and a wall-clock
    watchdog, supervised so one failing configuration does not take the
    others down.  Returns nonzero if any configuration failed."""
    from repro.config import dash_scaled_config
    from repro.experiments.registry import SMOKE_PROCESSES, smoke_program
    from repro.experiments.supervisor import ExperimentSupervisor
    from repro.faults import FaultPlan, Watchdog
    from repro.system import run_program

    plan = FaultPlan.preset(fault_level, seed=seed)
    config = dash_scaled_config(
        num_processors=SMOKE_PROCESSES,
        sanitize=True,
        seed=seed,
        max_events=max_events,
        fault_plan=plan,
    )
    names = _CHECK_APPS if app == "all" else (app,)
    supervisor = ExperimentSupervisor(
        watchdog_factory=lambda: Watchdog(wall_clock_limit_s=90.0),
        verbose=verbose,
    )
    jobs = [
        (
            name,
            (lambda n: lambda watchdog=None: run_program(
                smoke_program(n), config, watchdog=watchdog
            ))(name),
        )
        for name in names
    ]
    report = supervisor.run_sweep(f"faults-{fault_level}", jobs)
    print(f"[faults] plan={fault_level} seed={seed}")
    for entry in report.entries:
        if entry.ok:
            print(f"  {entry.name}: {entry.status.value} — "
                  f"{entry.result.faults.summary()}")
        else:
            print(f"  {entry.name}: FAILED — {entry.error.splitlines()[0]}")
    print(f"  {report.format().splitlines()[0]}")
    return 0 if report.ok else 1


def run_model_check(
    mc_config: Optional[dict] = None,
    mutation: Optional[str] = None,
    fingerprint_path: Optional[str] = None,
) -> int:
    """The ``check --model-check`` entry point: exhaustively enumerate
    the abstract protocol, print the verdict (and the counterexample
    trace if an invariant broke), and optionally compare the
    reachable-state fingerprint against a cached one so CI fails fast on
    unreviewed protocol diffs.  Returns nonzero on a violation or a
    fingerprint mismatch."""
    import pathlib

    from repro.analysis.modelcheck import (
        ModelConfig, check_protocol, format_counterexample,
    )

    config = ModelConfig(**(mc_config or {}))
    result = check_protocol(config, mutation=mutation)
    print(f"[model] {result.summary()}")
    if result.violation is not None:
        print(format_counterexample(result.violation))
        return 1
    if fingerprint_path:
        path = pathlib.Path(fingerprint_path)
        if path.exists():
            cached = path.read_text().strip()
            if cached != result.fingerprint:
                print(
                    f"[model] fingerprint MISMATCH: cached {cached[:16]} "
                    f"!= computed {result.fingerprint[:16]} — the "
                    f"reachable state space changed; review the protocol "
                    f"diff and delete {path} to accept"
                )
                return 1
            print(f"[model] fingerprint matches cache ({path})")
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(result.fingerprint + "\n")
            print(f"[model] fingerprint cached to {path}")
    return 0


def run_proto_lint(
    mutation: Optional[str] = None,
    fingerprint_path: Optional[str] = None,
    mc_config: Optional[dict] = None,
) -> int:
    """The ``check --proto-lint`` entry point: statically verify the
    declarative protocol transition table (complete, deterministic,
    live against the model checker's reachable states, stutter-free),
    printing each violation with its minimal witness trace.  With
    ``fingerprint_path``, cache the canonical table fingerprint so CI
    fails fast on unreviewed table diffs (the ``--mc-fingerprint``
    pattern).  Returns nonzero on any finding or fingerprint mismatch."""
    import pathlib

    from repro.analysis.modelcheck import ModelConfig
    from repro.analysis.protolint import lint_table, mutated_table

    table = mutated_table(mutation) if mutation is not None else None
    config = ModelConfig(**(mc_config or {}))
    result = lint_table(table, config=config)
    print(f"[protolint] {result.summary()}")
    for finding in result.findings:
        print("  " + finding.format().replace("\n", "\n  "))
    if result.model_fingerprint is not None:
        agreement = "agrees" if result.fingerprints_agree else "DISAGREES"
        print(
            f"[protolint] reachable-state fingerprint {agreement} with "
            f"the model checker "
            f"({(result.reachable_fingerprint or '')[:16]})"
        )
    if not result.ok:
        return 1
    if fingerprint_path:
        path = pathlib.Path(fingerprint_path)
        if path.exists():
            cached = path.read_text().strip()
            if cached != result.table_fingerprint:
                print(
                    f"[protolint] table fingerprint MISMATCH: cached "
                    f"{cached[:16]} != computed "
                    f"{result.table_fingerprint[:16]} — the transition "
                    f"table changed; review the diff and delete {path} "
                    f"to accept"
                )
                return 1
            print(f"[protolint] table fingerprint matches cache ({path})")
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(result.table_fingerprint + "\n")
            print(f"[protolint] table fingerprint cached to {path}")
    return 0


def run_proto_matrix(
    fingerprint_dir: Optional[str] = None,
    mc_config: Optional[dict] = None,
) -> int:
    """The ``check --proto-matrix`` entry point: model-check and
    proto-lint every registered protocol spec (``directory-msi``,
    ``mesi``, ``moesi``), so a spec cannot land in the registry without
    the full static battery passing over it.  With ``fingerprint_dir``,
    cache one fingerprint file per spec (``<dir>/<name>.fp`` holding
    the spec fingerprint and the reachable-state fingerprint) using the
    ``--mc-fingerprint`` compare-or-write idiom.  Returns nonzero on
    any violation, lint finding, or fingerprint mismatch."""
    import pathlib

    from repro.analysis.modelcheck import (
        ModelConfig, check_protocol, format_counterexample,
    )
    from repro.analysis.protolint import lint_table
    from repro.coherence.specs import get_spec, spec_names

    config = ModelConfig(**(mc_config or {}))
    status = 0
    for name in spec_names():
        spec = get_spec(name)
        result = check_protocol(config, spec=spec)
        print(f"[protomatrix] {name}: {result.summary()}")
        if result.violation is not None:
            print(format_counterexample(result.violation))
            status = 1
            continue
        lint = lint_table(config=config, spec=spec)
        print(f"[protomatrix] {name}: {lint.summary()}")
        for finding in lint.findings:
            print("  " + finding.format().replace("\n", "\n  "))
        if not lint.ok:
            status = 1
            continue
        if fingerprint_dir:
            path = pathlib.Path(fingerprint_dir) / f"{name}.fp"
            computed = f"{spec.fingerprint()} {result.fingerprint}"
            if path.exists():
                cached = path.read_text().strip()
                if cached != computed:
                    print(
                        f"[protomatrix] {name}: fingerprint MISMATCH: "
                        f"cached {cached[:16]} != computed "
                        f"{computed[:16]} — the spec or its reachable "
                        f"state space changed; review the diff and "
                        f"delete {path} to accept"
                    )
                    status = 1
                    continue
                print(f"[protomatrix] {name}: fingerprint matches "
                      f"cache ({path})")
            else:
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(computed + "\n")
                print(f"[protomatrix] {name}: fingerprint cached to "
                      f"{path}")
    return status


def run_proto_diff(
    pair: Optional[List[str]] = None,
    mutation: Optional[str] = None,
) -> int:
    """The ``check --proto-diff LEFT RIGHT`` entry point: decide
    observational trace equivalence of two registered specs by product-
    composing their reachable models (tau-closed determinization + BFS),
    printing the verdict and, on refutation, the minimal witness trace.

    Without ``pair``, diff every unordered pair of registered specs —
    the registry's claimed containment chain.  With ``mutation``, seed
    one of :data:`_DIFF_MUTATIONS` into the *right* spec; the expected
    (and nonzero-returning) outcome is a refutation with a printed
    witness, mirroring ``--mc-mutate``.  Returns nonzero when any pair
    is found inequivalent."""
    import itertools

    from repro.analysis.protodiff import diff_specs, mutated_spec
    from repro.coherence.specs import get_spec, spec_names

    if mutation is not None:
        left = get_spec(pair[0] if pair else "directory-msi")
        right = mutated_spec(mutation)
        result = diff_specs(left, right)
        print("[protodiff] " + result.format().replace("\n", "\n  "))
        if result.equivalent:
            print(f"[protodiff] mutation {mutation!r} was NOT detected")
            return 0
        return 1

    pairs = (
        [tuple(pair)]
        if pair
        else list(itertools.combinations(spec_names(), 2))
    )
    status = 0
    for left_name, right_name in pairs:
        result = diff_specs(get_spec(left_name), get_spec(right_name))
        print("[protodiff] " + result.format().replace("\n", "\n  "))
        if not result.ok:
            status = 1
    return status


def run_lat_bound(
    app: str,
    audit: bool = False,
    mutation: Optional[str] = None,
    fingerprint_path: Optional[str] = None,
    verbose: bool = False,
) -> int:
    """The ``check --lat-bound`` entry point: derive the per-transaction
    latency envelopes from the protocol table and run the static
    accounting conformance passes; with ``audit``, additionally replay a
    traced smoke run per app (under SC and RC) and verify every observed
    transaction latency falls inside its envelope.  With ``mutation``,
    seed one of :data:`_LAT_MUTATIONS` into the derivation and print the
    detecting witness (nonzero exit when detected, mirroring
    ``--proto-mutate``).  With ``fingerprint_path``, cache the canonical
    envelope fingerprint so CI fails fast on unreviewed latency-model
    diffs."""
    import pathlib

    from repro.analysis.latbound import audit_app, check_accounting
    from repro.config import Consistency

    result = check_accounting(mutation=mutation)
    print(f"[latbound] {result.summary()}")
    for finding in result.findings:
        print("  " + finding.format().replace("\n", "\n  "))
    if verbose:
        table_text = result.table.format_table(Consistency.RC)
        print("  " + table_text.replace("\n", "\n  "))

    if mutation is not None:
        if result.findings:
            return 1  # detected statically, witnesses printed above
        # The remaining defect class only shifts the bounds; replay one
        # traced smoke run and let the audit produce the witness.
        report = audit_app("MP3D", mutation=mutation)
        print("[latbound] " + report.format().replace("\n", "\n  "))
        if report.ok:
            print(f"[latbound] mutation {mutation!r} was NOT detected")
            return 0
        return 1

    if result.findings:
        return 1

    if audit:
        names = _CHECK_APPS if app == "all" else (app,)
        bad = 0
        for name in names:
            for model in (Consistency.SC, Consistency.RC):
                report = audit_app(name, model)
                print("[latbound] " + report.format().replace("\n", "\n  "))
                if not report.ok:
                    bad += 1
        if bad:
            return 1

    if fingerprint_path:
        path = pathlib.Path(fingerprint_path)
        if path.exists():
            cached = path.read_text().strip()
            if cached != result.fingerprint:
                print(
                    f"[latbound] envelope fingerprint MISMATCH: cached "
                    f"{cached[:16]} != computed {result.fingerprint[:16]} "
                    f"— the latency model changed; review the diff and "
                    f"delete {path} to accept"
                )
                return 1
            print(f"[latbound] envelope fingerprint matches cache ({path})")
        else:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(result.fingerprint + "\n")
            print(f"[latbound] envelope fingerprint cached to {path}")
    return 0


def run_trace_check(
    app: str,
    mutation: Optional[str] = None,
    verbose: bool = False,
) -> int:
    """The ``check --trace-check`` entry point.

    With ``mutation`` set, run the mutation's demonstration litmus test
    with the seeded consistency bug installed and print the witness —
    the expected (and nonzero-returning) outcome is a detected
    violation, mirroring ``--mc-mutate``.  Otherwise cross-validate the
    whole litmus matrix against the axiomatic oracle and trace one
    smoke run per requested app under RC.  Returns nonzero on any
    conformance failure."""
    from repro.analysis.tracecheck import check_app, run_mutation_demo

    if mutation is not None:
        report = run_mutation_demo(mutation)
        print(f"[trace] mutation {mutation!r}:")
        print("  " + report.format().replace("\n", "\n  "))
        if report.ok:
            print(f"[trace] mutation {mutation!r} was NOT detected")
            return 0
        return 1

    from repro.analysis.litmus import run_suite

    status = 0
    results = run_suite(trace_check=True)
    bad = [result for result in results if result.conformance_failures]
    print(f"[trace] litmus matrix: {len(results)} (test, model) pairs "
          f"cross-validated, {len(bad)} conformance failure(s)")
    for result in bad:
        print(f"  {result.explain()}")
        status = 1
    if verbose:
        for result in results:
            print(f"  {result.test.name} {result.model.name}: "
                  f"{len(result.by_schedule)} schedules conform")
    names = _CHECK_APPS if app == "all" else (app,)
    for name in names:
        report = check_app(name)
        print(f"[trace] {name}: {report.format()}")
        if not report.ok:
            status = 1
    return status


def run_check(
    app: str,
    checks: List[str],
    verbose: bool = False,
    fault_level: str = "smoke",
    seed: int = 0,
    max_events: Optional[int] = None,
    strict: bool = False,
    mc_config: Optional[dict] = None,
    mc_mutation: Optional[str] = None,
    mc_fingerprint: Optional[str] = None,
    trace_mutation: Optional[str] = None,
    proto_mutation: Optional[str] = None,
    proto_fingerprint: Optional[str] = None,
    proto_diff_pair: Optional[List[str]] = None,
    diff_mutation: Optional[str] = None,
    proto_matrix_fingerprints: Optional[str] = None,
    lat_audit: bool = False,
    lat_mutation: Optional[str] = None,
    lat_fingerprint: Optional[str] = None,
) -> int:
    """The ``repro check`` subcommand: op-stream lint, race detection,
    litmus consistency checks, a sanitized simulation, and the static
    passes (protocol model check, lock-order analysis, source lint,
    transition-table protolint, the per-spec protocol matrix, the
    differential protocol-equivalence diff, axiomatic trace
    conformance, layout lint).  ``--list-checks`` enumerates them; ``--all`` runs them all.
    Returns a nonzero exit status on lint errors, litmus violations, or
    invariant failures; data races are reported but do not fail the
    check (MP3D's move-phase races are benign and acknowledged by the
    paper).  ``strict`` promotes warnings to failures."""
    from repro.analysis.executor import LogicalExecutor
    from repro.analysis.oplint import OpLinter
    from repro.analysis.race_detector import RaceDetector
    from repro.sim.engine import SimulationError

    # Names of sub-checks that failed, in run order.  Each block only
    # ever *appends* — a later passing check can never mask an earlier
    # failure — and the final verdict lists the casualties by name.
    failed: List[str] = []

    def fail(check: str) -> None:
        if check not in failed:
            failed.append(check)

    if "lint" in checks or "races" in checks:
        for name, program, processes in _check_programs(app):
            linter = OpLinter(source=name)
            detector = RaceDetector()
            listeners = []
            if "lint" in checks:
                listeners.append(linter)
            if "races" in checks:
                listeners.append(detector)
            summary = LogicalExecutor(
                program, processes, listeners=listeners, strict=False
            ).run()
            print(f"[{name}] {summary.ops_executed} ops from "
                  f"{summary.num_threads} threads")
            if "lint" in checks:
                print(f"  {linter.format_issues()}")
                if linter.failures(strict):
                    fail("lint")
            if "races" in checks:
                print(f"  {detector.format_reports()}")
                if verbose:
                    for report in detector.reports:
                        print(f"    {report}")

    if "litmus" in checks:
        from repro.analysis.litmus import run_suite

        results = run_suite()
        bad = [result for result in results if not result.ok]
        print(f"[litmus] {len(results)} (test, model) pairs, "
              f"{len(bad)} violation(s)")
        for result in bad:
            print(f"  {result.explain()}")
            fail("litmus")
        if verbose:
            for result in results:
                print(f"  {result.test.name} {result.model.name}: "
                      f"{sorted(result.observed)}")

    if "invariants" in checks:
        from repro.config import dash_scaled_config
        from repro.system import Machine

        for name, program, processes in _check_programs(app):
            config = dash_scaled_config(
                num_processors=processes, sanitize=True,
                seed=seed, max_events=max_events,
            )
            machine = Machine(config)
            machine.load(program)
            try:
                machine.run()
            except SimulationError as exc:  # srclint: ok(swallow-simulation-error) — reported, fails the check
                print(f"[invariants] {name}: FAILED\n{exc}")
                fail("invariants")
            else:
                print(f"[invariants] {name}: ok "
                      f"({machine.sanitizer.checks_performed} checks)")

    if "faults" in checks:
        if run_fault_matrix(
            app, fault_level, seed=seed, max_events=max_events, verbose=verbose
        ):
            fail("faults")

    if "model" in checks:
        if run_model_check(
            mc_config, mutation=mc_mutation, fingerprint_path=mc_fingerprint
        ):
            fail("model")

    if "lockorder" in checks:
        from repro.analysis.lockorder import analyze_apps

        names = _CHECK_APPS if app == "all" else (app,)
        for report in analyze_apps(names):
            print(f"[lockorder] {report.format()}")
            bad = report.findings if strict else report.errors
            if bad:
                fail("lockorder")

    if "srclint" in checks:
        from repro.analysis.srclint import (
            default_root, failures, format_issues, lint_tree,
        )

        issues = lint_tree()
        print(f"[srclint] {default_root()}: {format_issues(issues)}")
        if failures(issues, strict):
            fail("srclint")

    if "protolint" in checks:
        if run_proto_lint(
            mutation=proto_mutation,
            fingerprint_path=proto_fingerprint,
            mc_config=mc_config,
        ):
            fail("protolint")

    if "protomatrix" in checks:
        if run_proto_matrix(
            fingerprint_dir=proto_matrix_fingerprints, mc_config=mc_config
        ):
            fail("protomatrix")

    if "protodiff" in checks:
        if run_proto_diff(pair=proto_diff_pair, mutation=diff_mutation):
            fail("protodiff")

    if "latbound" in checks:
        if run_lat_bound(
            app,
            audit=lat_audit,
            mutation=lat_mutation,
            fingerprint_path=lat_fingerprint,
            verbose=verbose,
        ):
            fail("latbound")

    if "trace" in checks:
        if run_trace_check(app, mutation=trace_mutation, verbose=verbose):
            fail("trace")

    if "layout" in checks:
        from repro.analysis.layoutlint import check_app_baselines

        ok, lines = check_app_baselines()
        print("[layout] bundled apps vs known-finding baselines:")
        for line in lines:
            print(line)
        if not ok:
            fail("layout")

    if "chaos" in checks:
        from repro.experiments.chaos import run_chaos_check

        if run_chaos_check(verbose=verbose):
            fail("chaos")

    if failed:
        print(f"check: FAILED ({', '.join(failed)})")
        return 1
    print("check: ok")
    return 0


def list_checks() -> str:
    """The ``--list-checks`` rendering: every pass with its one-liner,
    the CLI flags that select it, and whether it is in the no-flags
    default subset, with the ``--all`` semantics spelled out."""
    lines = ["available checks (run order):"]
    for name in _CHECKS:
        marker = "*" if name in _DEFAULT_CHECKS else " "
        lines.append(f"  {marker} {name:<11} {_CHECK_DESCRIPTIONS[name]}")
        membership = (
            "default: yes" if name in _DEFAULT_CHECKS else "default: no"
        )
        flags = ", ".join(_CHECK_FLAGS.get(name, ()))
        via = flags if flags else f"--checks {name}"
        lines.append(f"    {membership}; flags: {via}")
    lines.append(
        "checks marked * run by default; --all runs every check; "
        "--checks a,b or a dedicated flag runs just those"
    )
    return "\n".join(lines)


def select_checks(args) -> List[str]:
    """Resolve the ``check`` subcommand's flags to the list of passes.

    Dedicated-check flags (``--faults``, ``--model-check``,
    ``--lock-order``, ``--lint-src``, ``--proto-lint``,
    ``--trace-check``, ``--layout-lint``) select exactly those passes;
    ``--checks a,b`` adds an explicit list; ``--all`` selects every
    pass.  With no selection at all, the documented default subset
    :data:`_DEFAULT_CHECKS` runs (use ``--all`` for everything — the
    bare default is *not* the full suite).
    """
    selected = []
    if args.faults != "none":
        selected.append("faults")
    if args.model_check:
        selected.append("model")
    if args.lock_order:
        selected.append("lockorder")
    if args.lint_src:
        selected.append("srclint")
    if args.proto_lint or args.proto_mutate is not None:
        selected.append("protolint")
    if args.proto_matrix:
        selected.append("protomatrix")
    if args.proto_diff is not None or args.diff_mutate is not None:
        selected.append("protodiff")
    if args.lat_bound or args.lat_audit or args.lat_mutate is not None:
        selected.append("latbound")
    if args.trace_check or args.trace_mutate is not None:
        selected.append("trace")
    if args.layout_lint:
        selected.append("layout")
    if args.chaos:
        selected.append("chaos")
    if args.all_checks:
        checks = list(_CHECKS)
        checks.extend(c for c in selected if c not in checks)
        return checks
    if args.checks is not None:
        checks = [c.strip() for c in args.checks.split(",") if c.strip()]
        checks.extend(c for c in selected if c not in checks)
        return checks
    if selected:
        return selected
    return list(_DEFAULT_CHECKS)


#: Artifact targets a sweep can enumerate simulation points for
#: (``table1`` is latency probes, not program runs).
_SWEEP_TARGETS = ("table2", "fig2", "fig3", "fig4", "fig5", "fig6", "summary")


def run_sweep_command(args, parser) -> int:
    """The ``repro-1991 sweep`` subcommand: journaled, supervised,
    resumable sweep execution.  A fresh run journals its full point list
    up front and every outcome as it lands; SIGINT/SIGTERM drain
    in-flight points, flush the journal, and print the exact
    ``--resume`` command.  Exit status: 0 all points ok, 1 any point
    failed or quarantined, 130 interrupted (resumable)."""
    from repro.experiments.journal import resolve_journal_dir
    from repro.experiments.parallel import sweep_points_for
    from repro.experiments.resultcache import ResultCache, resolve_cache_dir
    from repro.experiments.supervisor import ExperimentSupervisor
    from repro.experiments.sweepservice import (
        ServiceControl,
        ServicePolicy,
        SweepService,
        resume_command,
    )
    from repro.faults import Watchdog

    journal_dir = resolve_journal_dir(args.journal_dir)
    cache_dir = resolve_cache_dir(args.cache_dir)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    control = ServiceControl()
    service = SweepService(
        journal_dir,
        cache=cache,
        policy=ServicePolicy(hang_timeout_s=args.hang_timeout),
        control=control,
        verbose=args.verbose,
    )
    watchdog_factory = None
    if args.hang_timeout is not None:
        # Smoke-scale apps fire too few events for the default 250k
        # heartbeat interval; a tight interval keeps the liveness files
        # fresh so a slow-but-alive pool is never mistaken for a hang.
        watchdog_factory = lambda: Watchdog(heartbeat_every=2000)  # noqa: E731
    supervisor = ExperimentSupervisor(
        watchdog_factory=watchdog_factory, verbose=args.verbose
    )

    with control.handle_signals():
        if args.resume:
            run_id = args.resume
            try:
                report = service.resume(
                    run_id, supervisor=supervisor, jobs=args.jobs
                )
            except (FileNotFoundError, ValueError) as exc:
                parser.error(str(exc))
        else:
            names = [t.strip() for t in args.targets.split(",") if t.strip()]
            if names == ["all"]:
                names = list(_SWEEP_TARGETS)
            unknown = [t for t in names if t not in _SWEEP_TARGETS]
            if unknown:
                parser.error(
                    f"unknown sweep targets: {', '.join(unknown)} "
                    f"(choose from {', '.join(_SWEEP_TARGETS)}, or 'all')"
                )
            runner = ExperimentRunner(
                scale=args.scale,
                verbose=args.verbose,
                seed=args.seed,
                max_events=args.max_events,
            )
            points = sweep_points_for(names, runner)
            if not points:
                parser.error("the selected targets produce no sweep points")
            run_id, report = service.start(
                "sweep:" + ",".join(names), points,
                supervisor=supervisor, jobs=args.jobs,
            )

    print(report.format())
    print(service.cache.stats_line())
    print(f"run id: {run_id} (journal: {journal_dir})")
    if report.interrupted:
        print(f"interrupted — resume with: {resume_command(journal_dir, run_id)}")
        return 130
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-1991",
        description=(
            "Regenerate the tables and figures of Gupta et al., "
            "'Comparative Evaluation of Latency Reducing and Tolerating "
            "Techniques' (ISCA 1991)."
        ),
    )
    parser.add_argument(
        "what",
        choices=["table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6",
                 "summary", "all", "check", "sweep"],
        help="which artifact to regenerate, 'check' to run the "
             "analysis suite (lint, races, litmus, invariants, plus the "
             "static passes: model, lockorder, srclint, protolint, "
             "latbound, trace, layout, chaos), or 'sweep' to run a "
             "journaled, crash-tolerant, "
             "resumable sweep of the targets' simulation points",
    )
    parser.add_argument(
        "--scale",
        choices=["bench", "default", "paper", "smoke"],
        default="default",
        help="workload scale (paper = the full data sets; slow; "
             "smoke = the seconds-scale CI data sets)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run independent sweep points over N worker processes "
             "(default: $REPRO_JOBS or 1 = serial; results are "
             "bit-identical either way)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed on-disk result cache: repeat runs of an "
             "unchanged (app, scale, config, version) point are replayed "
             "instead of re-simulated (default: $REPRO_CACHE_DIR, else "
             "disabled)",
    )
    parser.add_argument(
        "--app",
        choices=["MP3D", "LU", "PTHOR", "all"],
        default="all",
        help="application(s) for the 'check' subcommand",
    )
    parser.add_argument(
        "--targets",
        default="summary",
        metavar="T1,T2",
        help="for 'sweep': comma-separated artifact targets whose "
             "simulation points make up the sweep (table2, fig2..fig6, "
             "summary, or 'all'; default: summary)",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="RUN_ID",
        help="for 'sweep': continue the interrupted run RUN_ID from its "
             "journal instead of starting a fresh sweep (the exact "
             "command is printed when a sweep is interrupted)",
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="for 'sweep': directory holding run journals and the "
             "default result cache (default: $REPRO_JOURNAL_DIR, else "
             ".repro/journal)",
    )
    parser.add_argument(
        "--hang-timeout",
        type=float,
        default=None,
        metavar="S",
        help="for 'sweep': declare the worker pool hung after S seconds "
             "with no completion and no worker heartbeat, then restart "
             "it and retry the lost points (default: disabled)",
    )
    parser.add_argument(
        "--checks",
        default=None,
        help="comma-separated subset of checks to run: "
             + ",".join(_CHECKS)
             + " (default: " + ",".join(_DEFAULT_CHECKS) + " — NOT the "
             "full suite; use --all for everything, --list-checks to "
             "enumerate; just the selected checks when --faults, "
             "--model-check, --lock-order, --lint-src, --proto-lint, "
             "--trace-check, or --layout-lint is given)",
    )
    parser.add_argument(
        "--all",
        dest="all_checks",
        action="store_true",
        help="run every check in the suite (the documented "
             "everything mode; the bare default runs only "
             + ",".join(_DEFAULT_CHECKS) + ")",
    )
    parser.add_argument(
        "--list-checks",
        action="store_true",
        help="list every check with a one-line description and exit",
    )
    parser.add_argument(
        "--model-check",
        action="store_true",
        help="exhaustively model-check the abstract directory protocol "
             "(SWMR, data values, directory precision, no stuck states) "
             "over the --mc-* bounds, printing a minimal counterexample "
             "trace on violation",
    )
    parser.add_argument(
        "--lock-order",
        action="store_true",
        help="static deadlock analysis: build the lock/barrier "
             "acquisition graph of each application's op streams and "
             "report lock-order cycles and barrier mismatches",
    )
    parser.add_argument(
        "--lint-src",
        action="store_true",
        help="determinism lint over the simulator source itself "
             "(unseeded random, wall-clock reads, unordered-set "
             "iteration, mutable defaults, swallowed SimulationError, "
             "stale srclint acknowledgements)",
    )
    parser.add_argument(
        "--trace-check",
        action="store_true",
        help="axiomatic trace conformance: cross-validate the litmus "
             "matrix against the declared model's happens-before axioms "
             "and trace one smoke run per app under RC",
    )
    parser.add_argument(
        "--trace-mutate",
        choices=list(_TRACE_MUTATIONS),
        default=None,
        help="run --trace-check's demo litmus test with a deliberately "
             "seeded consistency bug installed (each mutation yields a "
             "printed witness cycle and a nonzero exit)",
    )
    parser.add_argument(
        "--proto-lint",
        action="store_true",
        help="statically verify the declarative protocol transition "
             "table: complete (every reachable (state, event) pair "
             "handled or declared impossible), deterministic (no "
             "overlapping rules), live (no dead states/transitions, "
             "cross-checked against the model checker's reachable "
             "states), and stutter-free, with minimal witness traces",
    )
    parser.add_argument(
        "--proto-mutate",
        choices=list(_PROTO_MUTATIONS),
        default=None,
        help="proto-lint a deliberately broken copy of the table (demo: "
             "each mutation yields a violation with a witness)",
    )
    parser.add_argument(
        "--proto-fingerprint",
        default=None,
        metavar="PATH",
        help="cache the canonical table fingerprint at PATH: written "
             "when absent, compared when present (mismatch fails the "
             "check — CI's fast table-diff detector)",
    )
    parser.add_argument(
        "--proto-matrix",
        action="store_true",
        help="model-check and proto-lint every registered protocol "
             "spec (directory-msi, mesi, moesi) under the --mc-* "
             "bounds, so a registry entry cannot drift without the "
             "full static battery noticing",
    )
    parser.add_argument(
        "--proto-matrix-fingerprints",
        default=None,
        metavar="DIR",
        help="with --proto-matrix: cache one fingerprint file per spec "
             "under DIR (<spec>.fp, written when absent, compared when "
             "present; mismatch fails the check — CI's fast "
             "spec-diff detector)",
    )
    parser.add_argument(
        "--proto-diff",
        nargs=2,
        default=None,
        metavar=("LEFT", "RIGHT"),
        help="differential protocol equivalence: product-compose the "
             "two named specs' reachable models (tau-closed "
             "determinization + BFS) and prove observational "
             "equivalence on load-value/ownership traces, or refute it "
             "with a minimal witness; use '--checks protodiff' alone "
             "to diff every registered pair",
    )
    parser.add_argument(
        "--diff-mutate",
        choices=list(_DIFF_MUTATIONS),
        default=None,
        help="run --proto-diff against a deliberately broken right "
             "spec (demo: the mutation must be refuted with a printed "
             "witness trace and a nonzero exit)",
    )
    parser.add_argument(
        "--lat-bound",
        action="store_true",
        help="derive closed-form per-transaction latency envelopes from "
             "the protocol transition table and the machine config, and "
             "statically verify the accounting (every rule priced into "
             "exactly one stall bucket, connected charge paths, single "
             "directory pass, Table 1's additive distance ladder, "
             "monotonicity in every config parameter, additive technique "
             "composition)",
    )
    parser.add_argument(
        "--lat-audit",
        action="store_true",
        help="with --lat-bound: replay a traced smoke run per app under "
             "SC and RC and verify every observed transaction latency "
             "falls inside its derived envelope (fault-free runs only)",
    )
    parser.add_argument(
        "--lat-mutate",
        choices=list(_LAT_MUTATIONS),
        default=None,
        help="run --lat-bound with a deliberately seeded accounting "
             "defect (demo: the first two are caught statically with a "
             "witness path, envelope-too-tight is caught by the trace "
             "audit with a witness transaction)",
    )
    parser.add_argument(
        "--lat-fingerprint",
        default=None,
        metavar="PATH",
        help="cache the canonical envelope fingerprint at PATH: written "
             "when absent, compared when present (mismatch fails the "
             "check — CI's fast latency-model-diff detector)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="crash-tolerance drill: run a tiny journaled sweep whose "
             "points SIGKILL their own pool workers, interrupt it, "
             "corrupt the journal tail, resume, and verify the resumed "
             "payload digests are bit-identical to an uninterrupted "
             "serial run (the poison point must end up quarantined)",
    )
    parser.add_argument(
        "--layout-lint",
        action="store_true",
        help="static memory-layout lint over the bundled apps: false "
             "sharing and malformed prefetch streams, compared against "
             "the known-finding baselines",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="promote warnings to failures (op-stream lint warnings, "
             "lock-order warnings)",
    )
    parser.add_argument(
        "--mc-caches", type=int, default=2, metavar="N",
        help="model checker bound: number of caches (default 2)",
    )
    parser.add_argument(
        "--mc-lines", type=int, default=1, metavar="N",
        help="model checker bound: number of lines (default 1)",
    )
    parser.add_argument(
        "--mc-values", type=int, default=2, metavar="N",
        help="model checker bound: distinct data values (default 2)",
    )
    parser.add_argument(
        "--mc-in-flight", type=int, default=2, metavar="N",
        help="model checker bound: messages in flight (default 2)",
    )
    parser.add_argument(
        "--mc-retries", type=int, default=2, metavar="N",
        help="model checker bound: NACK retry budget (default 2)",
    )
    parser.add_argument(
        "--mc-mutate",
        choices=["skip-invalidation", "lost-writeback", "nack-forever"],
        default=None,
        help="model-check a deliberately broken protocol variant (demo: "
             "each mutation yields a minimal counterexample trace)",
    )
    parser.add_argument(
        "--mc-fingerprint",
        default=None,
        metavar="PATH",
        help="cache the model checker's reachable-state fingerprint at "
             "PATH: written when absent, compared when present "
             "(mismatch fails the check — CI's fast protocol-diff "
             "detector)",
    )
    parser.add_argument(
        "--faults",
        choices=["none", "smoke", "heavy"],
        default="none",
        help="fault plan for the 'faults' check: run the smoke apps "
             "under seeded message faults (drops, delays, duplicates, "
             "directory NACKs) with the coherence sanitizer armed",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="master seed threaded into MachineConfig: makes fault "
             "plans and their retry schedules reproducible",
    )
    parser.add_argument(
        "--max-events",
        type=int,
        default=None,
        metavar="N",
        help="event-engine livelock guard: abort any single run after "
             "N events instead of the default 2e9",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log each simulation run"
    )
    args = parser.parse_args(argv)

    if args.what == "check":
        if args.list_checks:
            print(list_checks())
            return 0
        checks = select_checks(args)
        unknown = set(checks) - set(_CHECKS)
        if unknown:
            parser.error(f"unknown checks: {', '.join(sorted(unknown))}")
        if args.proto_diff is not None:
            from repro.coherence.specs import spec_names

            bad = [n for n in args.proto_diff if n not in spec_names()]
            if bad:
                parser.error(
                    f"unknown protocol spec(s): {', '.join(bad)} "
                    f"(registered: {', '.join(spec_names())})"
                )
        fault_level = args.faults if args.faults != "none" else "smoke"
        from repro.faults.plan import BackoffPolicy

        mc_config = dict(
            num_caches=args.mc_caches,
            num_lines=args.mc_lines,
            num_values=args.mc_values,
            max_in_flight=args.mc_in_flight,
            backoff=BackoffPolicy(max_retries=args.mc_retries),
        )
        return run_check(
            args.app,
            checks,
            verbose=args.verbose,
            fault_level=fault_level,
            seed=args.seed,
            max_events=args.max_events,
            strict=args.strict,
            mc_config=mc_config,
            mc_mutation=args.mc_mutate,
            mc_fingerprint=args.mc_fingerprint,
            trace_mutation=args.trace_mutate,
            proto_mutation=args.proto_mutate,
            proto_fingerprint=args.proto_fingerprint,
            proto_diff_pair=args.proto_diff,
            diff_mutation=args.diff_mutate,
            proto_matrix_fingerprints=args.proto_matrix_fingerprints,
            lat_audit=args.lat_audit,
            lat_mutation=args.lat_mutate,
            lat_fingerprint=args.lat_fingerprint,
        )

    from repro.experiments.parallel import JobsError

    if args.what == "sweep":
        try:
            return run_sweep_command(args, parser)
        except JobsError as exc:
            parser.error(str(exc))

    try:
        runner = ExperimentRunner(
            scale=args.scale,
            verbose=args.verbose,
            seed=args.seed,
            max_events=args.max_events,
            cache_dir=args.cache_dir,
            jobs=args.jobs,
        )
    except JobsError as exc:
        parser.error(str(exc))
    targets = (
        ["table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "summary"]
        if args.what == "all"
        else [args.what]
    )

    if runner.jobs > 1 or runner.result_cache is not None:
        # Fast-sweep path: fan the union of the targets' sweep points
        # out over the pool / the result cache, then render from the
        # warmed memo.  The report makes per-entry wall time and cache
        # hit/miss behaviour visible.
        from repro.experiments.parallel import sweep_points_for

        points = sweep_points_for(targets, runner)
        if points:
            report = runner.prewarm(points)
            print(report.format())
            if runner.result_cache is not None:
                print(runner.result_cache.stats_line())
            print()
            if not report.ok:
                return 1

    def render(target: str) -> None:
        if target == "table1":
            _print_table1()
        elif target == "table2":
            _print_table2(runner)
        elif target == "summary":
            _print_summary(runner)
        else:
            _print_figure(target, runner)
        print()

    if args.what == "all":
        # Supervised: one failing artifact still lets the rest print,
        # and the partial report names the casualty.
        from repro.experiments.supervisor import ExperimentSupervisor

        supervisor = ExperimentSupervisor()
        report = supervisor.run_sweep(
            "all-artifacts",
            [(t, (lambda tt: lambda: render(tt))(t)) for t in targets],
        )
        if not report.ok:
            print(report.format())
            return 1
        return 0

    render(targets[0])
    return 0


if __name__ == "__main__":
    sys.exit(main())
