"""Command-line interface.

``repro-1991 table1`` / ``table2`` / ``fig2`` .. ``fig6`` / ``summary`` /
``all`` regenerate the paper's tables and figures at a chosen workload
scale and print them next to the paper's published values.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments import (
    ExperimentRunner,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    format_bars,
    format_table,
    summary_speedups,
    table1,
    table2,
)
from repro.experiments import paper_data


def _print_table1() -> None:
    probes = table1()
    rows = [
        (p.operation, p.expected, p.measured, "ok" if p.matches else "MISMATCH")
        for p in probes
    ]
    print(
        format_table(
            "Table 1: memory operation latencies (pclocks, no contention)",
            ["operation", "paper", "measured", ""],
            rows,
        )
    )


def _print_table2(runner: ExperimentRunner) -> None:
    rows = []
    for row in table2(runner):
        paper = paper_data.TABLE2[row.app]
        rows.append(
            (
                row.app,
                f"{row.useful_kcycles:.0f}",
                paper["useful_kcycles"],
                f"{row.shared_reads_k:.0f}",
                paper["shared_reads_k"],
                f"{row.shared_writes_k:.0f}",
                paper["shared_writes_k"],
                row.locks,
                paper["locks"],
                row.barriers,
                paper["barriers"],
                f"{row.shared_kbytes:.0f}",
                paper["shared_kbytes"],
            )
        )
    print(
        format_table(
            f"Table 2: general statistics (measured at scale={runner.scale!r} "
            "vs paper's full workloads)",
            [
                "app",
                "busy(K)",
                "paper",
                "reads(K)",
                "paper",
                "writes(K)",
                "paper",
                "locks",
                "paper",
                "barriers",
                "paper",
                "KB",
                "paper",
            ],
            rows,
        )
    )


_FIGURES = {
    "fig2": ("Figure 2: effect of caching shared data", figure2,
             paper_data.FIGURE2_TOTALS, False),
    "fig3": ("Figure 3: effect of relaxing the consistency model", figure3,
             paper_data.FIGURE3_TOTALS, False),
    "fig4": ("Figure 4: effect of prefetching", figure4,
             paper_data.FIGURE4_TOTALS, False),
    "fig5": ("Figure 5: effect of multiple contexts (SC)", figure5,
             paper_data.FIGURE5_TOTALS, True),
    "fig6": ("Figure 6: combining the schemes (switch latency 4)", figure6,
             paper_data.FIGURE6_TOTALS, True),
}


def _print_figure(name: str, runner: ExperimentRunner) -> None:
    title, fn, paper, multi = _FIGURES[name]
    bars = fn(runner)
    print(format_bars(title, bars, paper_totals=paper, multi_context=multi))


def _print_summary(runner: ExperimentRunner) -> None:
    speedups = summary_speedups(runner)
    rows = []
    for app, values in speedups.items():
        rows.append(
            (
                app,
                values["cache_over_uncached"],
                values["rc_over_sc"],
                values["rc_pf_over_sc"],
                values["combined_over_uncached"],
            )
        )
    print(
        format_table(
            "Section 7 headline speedups (combined best is over the "
            "uncached baseline; paper reports 4-7x)",
            ["app", "cache", "RC/SC", "RC+pf/SC", "combined"],
            rows,
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-1991",
        description=(
            "Regenerate the tables and figures of Gupta et al., "
            "'Comparative Evaluation of Latency Reducing and Tolerating "
            "Techniques' (ISCA 1991)."
        ),
    )
    parser.add_argument(
        "what",
        choices=["table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6",
                 "summary", "all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--scale",
        choices=["bench", "default", "paper"],
        default="default",
        help="workload scale (paper = the full data sets; slow)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="log each simulation run"
    )
    args = parser.parse_args(argv)

    runner = ExperimentRunner(scale=args.scale, verbose=args.verbose)
    targets = (
        ["table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "summary"]
        if args.what == "all"
        else [args.what]
    )
    for target in targets:
        if target == "table1":
            _print_table1()
        elif target == "table2":
            _print_table2(runner)
        elif target == "summary":
            _print_summary(runner)
        else:
            _print_figure(target, runner)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
