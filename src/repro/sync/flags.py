"""Flags (ANL events).

A flag is a one-shot condition: a producer *sets* it (release semantics)
and consumers *wait* for it (acquire semantics).  LU uses one flag per
pivot column ("release any processors waiting for that column",
Section 2.2); its waits are reported in the paper's lock column of
Table 2 (199 columns x 16 processors = 3184), and we count them the same
way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.sim.engine import EventEngine
from repro.sync.costs import SyncCosts

GrantCallback = Callable[[int], None]


@dataclass
class _FlagState:
    set_time: Optional[int] = None
    waiters: List[Tuple[int, GrantCallback]] = field(default_factory=list)


@dataclass
class FlagStats:
    waits: int = 0
    blocked_waits: int = 0
    sets: int = 0
    total_wait_cycles: int = 0


class FlagManager:
    """All flags in the machine, keyed by flag address."""

    def __init__(self, engine: EventEngine, costs: SyncCosts) -> None:
        self.engine = engine
        self.costs = costs
        self._flags: Dict[int, _FlagState] = {}
        self.stats = FlagStats()

    def _state(self, addr: int) -> _FlagState:
        state = self._flags.get(addr)
        if state is None:
            state = _FlagState()
            self._flags[addr] = state
        return state

    def wait(
        self, addr: int, node: int, time: int, callback: GrantCallback
    ) -> Optional[int]:
        """Wait for the flag.  Returns the grant time if already set,
        else None (``callback`` fires later)."""
        flag = self._state(addr)
        self.stats.waits += 1
        probe_done = time + self.costs.acquire_cost(node, addr, time)
        if flag.set_time is not None:
            return max(probe_done, flag.set_time)
        self.stats.blocked_waits += 1
        flag.waiters.append((node, callback))
        return None

    def set(self, addr: int, node: int, time: int) -> int:
        """Set the flag at ``time`` (already fenced under RC).

        Wakes all waiters; returns the visibility time.
        """
        flag = self._state(addr)
        self.stats.sets += 1
        visible = time + self.costs.release_cost(node, addr, time)
        if flag.set_time is None:
            flag.set_time = visible
        for waiter_node, callback in flag.waiters:
            grant = visible + self.costs.notify_cost(addr, waiter_node, visible)
            self.engine.schedule(grant, (lambda cb, g: lambda: cb(g))(callback, grant))
        flag.waiters.clear()
        return visible

    def is_set(self, addr: int) -> bool:
        return self._state(addr).set_time is not None

    def pending(self):
        """Deadlock diagnostics: ``(addr, waiter nodes)`` for every
        unset flag someone is still waiting on."""
        report = []
        for addr, flag in sorted(self._flags.items()):
            if flag.waiters:
                report.append((addr, [node for node, _cb in flag.waiters]))
        return report

    def reset(self, addr: int) -> None:
        """Clear a flag for reuse (between MP3D time-step phases)."""
        flag = self._state(addr)
        if flag.waiters:
            raise RuntimeError(f"resetting flag {addr:#x} with waiters")
        flag.set_time = None
