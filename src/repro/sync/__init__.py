"""Synchronization primitives: locks, flags (events), and barriers."""

from repro.sync.barrier import BarrierManager, BarrierStats
from repro.sync.costs import SyncCosts
from repro.sync.flags import FlagManager, FlagStats
from repro.sync.lock import LockManager, LockStats

__all__ = [
    "BarrierManager",
    "BarrierStats",
    "FlagManager",
    "FlagStats",
    "LockManager",
    "LockStats",
    "SyncCosts",
]
