"""Barrier manager.

Barriers separate the phases of MP3D time steps and LU/PTHOR epochs.
Arrival has release semantics (the caller fences its write buffer first
under RC); the last arrival releases every participant, and each waiter
resumes after a notification hop back to its node.

Table 2 counts barrier *crossings* (one per participating process), and
:attr:`BarrierStats.crossings` matches that; :attr:`BarrierStats.episodes`
counts distinct barrier events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.sim.engine import EventEngine
from repro.sync.costs import SyncCosts

GrantCallback = Callable[[int], None]


@dataclass
class _BarrierState:
    arrivals: List[Tuple[int, GrantCallback]] = field(default_factory=list)
    latest_arrival: int = 0
    #: Participant count of the current episode (diagnostics only).
    participants: int = 0


@dataclass
class BarrierStats:
    crossings: int = 0
    episodes: int = 0
    total_wait_cycles: int = 0


class BarrierManager:
    """All barriers in the machine, keyed by barrier address."""

    def __init__(self, engine: EventEngine, costs: SyncCosts) -> None:
        self.engine = engine
        self.costs = costs
        self._barriers: Dict[int, _BarrierState] = {}
        self.stats = BarrierStats()

    def _state(self, addr: int) -> _BarrierState:
        state = self._barriers.get(addr)
        if state is None:
            state = _BarrierState()
            self._barriers[addr] = state
        return state

    def arrive(
        self,
        addr: int,
        participants: int,
        node: int,
        time: int,
        callback: GrantCallback,
    ) -> None:
        """Arrive at the barrier; ``callback`` fires with the resume time
        once all ``participants`` processes have arrived."""
        if participants <= 0:
            raise ValueError("barrier needs at least one participant")
        barrier = self._state(addr)
        barrier.participants = participants
        self.stats.crossings += 1
        arrival_done = time + self.costs.release_cost(node, addr, time)
        barrier.latest_arrival = max(barrier.latest_arrival, arrival_done)
        barrier.arrivals.append((node, callback))
        if len(barrier.arrivals) > participants:
            raise RuntimeError(
                f"barrier {addr:#x} got {len(barrier.arrivals)} arrivals "
                f"for {participants} participants"
            )
        if len(barrier.arrivals) == participants:
            self.stats.episodes += 1
            release_time = barrier.latest_arrival
            arrivals = barrier.arrivals
            barrier.arrivals = []
            barrier.latest_arrival = 0
            for waiter_node, waiter_callback in arrivals:
                grant = release_time + self.costs.notify_cost(
                    addr, waiter_node, release_time
                )
                self.engine.schedule(
                    grant, (lambda cb, g: lambda: cb(g))(waiter_callback, grant)
                )

    def waiting_count(self, addr: int) -> int:
        return len(self._state(addr).arrivals)

    def pending(self):
        """Deadlock diagnostics: ``(addr, arrived nodes, participants)``
        for every barrier episode that has not released yet."""
        report = []
        for addr, barrier in sorted(self._barriers.items()):
            if barrier.arrivals:
                report.append(
                    (
                        addr,
                        [node for node, _cb in barrier.arrivals],
                        barrier.participants,
                    )
                )
        return report
