"""Latency model for synchronization operations.

The applications synchronize with the Argonne (ANL) macro package
primitives: locks, events (flags), and barriers.  We model each
synchronization operation as a round trip to the primitive's home node,
charged on the same buses and links as ordinary coherence traffic, with
base costs taken from the Table 1 read/write rows (a lock acquire is a
read-modify-write probe; a release is a write).

Waiting time spent blocked on a held lock, an unset flag, or an
incomplete barrier is accounted as *synchronization* stall by the
processor — except that applications may also choose to spin explicitly
(PTHOR's idle loop), in which case the spin shows up as busy time exactly
as the paper describes.
"""

from __future__ import annotations

from repro.config import MachineConfig
from repro.interconnect import Interconnect
from repro.memlayout import SharedMemoryAllocator


class SyncCosts:
    """Computes round-trip costs for synchronization messages."""

    def __init__(
        self,
        config: MachineConfig,
        allocator: SharedMemoryAllocator,
        interconnect: Interconnect,
    ) -> None:
        self.config = config
        self.allocator = allocator
        self.net = interconnect

    def home_of(self, addr: int) -> int:
        return self.allocator.home_of(addr)

    @property
    def locks_cacheable(self) -> bool:
        """With coherent caches, lock lines are cacheable: a node that
        re-acquires a lock it touched last hits its own cache."""
        return self.config.caching_shared_data

    #: Cycles for a test&set / clear on a lock line already held in the
    #: acquiring node's cache (secondary-cache read-modify-write).
    cached_acquire_cycles: int = 4
    cached_release_cycles: int = 2

    def acquire_cost(self, node: int, addr: int, time: int) -> int:
        """Probe/acquire round trip from ``node`` to the primitive."""
        home = self.home_of(addr)
        lat = self.config.latency
        if home == node:
            base = lat.read_fill_local
            delay = self.net.charge_bus(node, time, data=False)
            delay += self.net.charge_memory(home, time + delay)
        else:
            base = lat.read_fill_home
            delay = self.net.charge_bus(node, time, data=False)
            delay += self.net.charge_hop(node, home, time + delay, data=False)
            delay += self.net.charge_memory(home, time + delay)
            delay += self.net.charge_hop(home, node, time + delay, data=False)
        return base + delay

    def release_cost(self, node: int, addr: int, time: int) -> int:
        """Release write from ``node`` to the primitive's home."""
        home = self.home_of(addr)
        lat = self.config.latency
        if home == node:
            base = lat.write_owned_local
            delay = self.net.charge_bus(node, time, data=False)
        else:
            base = lat.write_owned_home
            delay = self.net.charge_bus(node, time, data=False)
            delay += self.net.charge_hop(node, home, time + delay, data=False)
        return base + delay

    def notify_cost(self, home_addr: int, waiter_node: int, time: int) -> int:
        """Cost of informing a blocked waiter that it may proceed."""
        home = self.home_of(home_addr)
        lat = self.config.latency
        if home == waiter_node:
            return lat.read_fill_local
        delay = self.net.charge_hop(home, waiter_node, time, data=False)
        return lat.read_fill_home - lat.read_fill_local + delay
