"""Lock manager.

Locks are granted in FIFO order.  An uncontended acquire costs one round
trip to the lock's home node; a contended acquire blocks the context and
is granted when the holder releases, plus a handoff notification.

Under release consistency, the caller computes the *release point* (all
prior writes complete, including invalidation acks) before invoking
:meth:`LockManager.release`; pipelined writes therefore let a remote
waiter observe the release sooner than under SC, which is the mechanism
by which RC shrinks synchronization time in Figure 3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.sim.engine import EventEngine
from repro.sync.costs import SyncCosts

GrantCallback = Callable[[int], None]


@dataclass
class _LockState:
    held: bool = False
    holder: Optional[int] = None
    #: Earliest time a new acquire can be granted after the last release.
    free_time: int = 0
    #: Node whose cache holds the lock line (for cached re-acquires).
    last_toucher: Optional[int] = None
    waiters: Deque[Tuple[int, GrantCallback]] = field(default_factory=deque)


@dataclass
class LockStats:
    acquires: int = 0
    contended_acquires: int = 0
    releases: int = 0
    total_wait_cycles: int = 0


class LockManager:
    """All locks in the machine, keyed by lock address."""

    def __init__(self, engine: EventEngine, costs: SyncCosts) -> None:
        self.engine = engine
        self.costs = costs
        self._locks: Dict[int, _LockState] = {}
        self.stats = LockStats()

    def _state(self, addr: int) -> _LockState:
        state = self._locks.get(addr)
        if state is None:
            state = _LockState()
            self._locks[addr] = state
        return state

    def acquire(
        self, addr: int, node: int, time: int, callback: GrantCallback
    ) -> Optional[int]:
        """Attempt to acquire.  Returns the grant time if immediate,
        else None (``callback`` fires with the grant time later)."""
        lock = self._state(addr)
        self.stats.acquires += 1
        if self.costs.locks_cacheable and lock.last_toucher == node:
            # The lock line is still in this node's cache: test&set hit.
            probe_done = time + self.costs.cached_acquire_cycles
        else:
            probe_done = time + self.costs.acquire_cost(node, addr, time)
        if not lock.held:
            lock.held = True
            lock.holder = node
            lock.last_toucher = node
            grant = max(probe_done, lock.free_time)
            return grant
        self.stats.contended_acquires += 1
        lock.waiters.append((node, callback))
        return None

    def release(self, addr: int, node: int, time: int) -> int:
        """Release at ``time`` (already fenced by the caller under RC).

        Returns the time the release is globally visible.
        """
        lock = self._state(addr)
        if not lock.held:
            raise RuntimeError(f"release of unheld lock {addr:#x}")
        self.stats.releases += 1
        if self.costs.locks_cacheable and lock.last_toucher == node:
            visible = time + self.costs.cached_release_cycles
        else:
            visible = time + self.costs.release_cost(node, addr, time)
        lock.last_toucher = node
        if lock.waiters:
            waiter_node, callback = lock.waiters.popleft()
            grant = visible + self.costs.notify_cost(addr, waiter_node, visible)
            lock.holder = waiter_node
            lock.last_toucher = waiter_node
            self.engine.schedule(grant, lambda: callback(grant))
        else:
            lock.held = False
            lock.holder = None
            lock.free_time = visible
        return visible

    def is_held(self, addr: int) -> bool:
        return self._state(addr).held

    def queue_length(self, addr: int) -> int:
        return len(self._state(addr).waiters)

    def pending(self):
        """Deadlock diagnostics: ``(addr, holder, waiter nodes)`` for
        every lock that is held or has queued waiters."""
        report = []
        for addr, lock in sorted(self._locks.items()):
            if lock.held or lock.waiters:
                report.append(
                    (addr, lock.holder, [node for node, _cb in lock.waiters])
                )
        return report
