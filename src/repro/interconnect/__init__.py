"""Node bus and network link contention model."""

from repro.interconnect.network import Interconnect, NodeLinks

__all__ = ["Interconnect", "NodeLinks"]
