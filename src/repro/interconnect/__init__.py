"""Node bus and network link contention model."""

from repro.interconnect.network import (
    ChargeKind,
    Interconnect,
    NodeLinks,
    max_charges_per_transaction,
    max_occupancy,
    occupancy_of,
    stations_per_charge,
)

__all__ = [
    "ChargeKind",
    "Interconnect",
    "NodeLinks",
    "max_charges_per_transaction",
    "max_occupancy",
    "occupancy_of",
    "stations_per_charge",
]
