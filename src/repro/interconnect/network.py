"""Node bus and interconnection network contention model.

Each node owns three queued resources: its node bus (133 MB/s in DASH,
~4 bytes/pclock), and its network input and output links (~150 MB/s,
~4.5 bytes/pclock).  Coherence transactions charge occupancy on the
resources along their path; the *queuing delay* accumulated (time spent
waiting for each resource to become free) is added to the Table 1 base
latency of the transaction.  Occupancies themselves are considered part
of the base latency, so an unloaded machine reproduces Table 1 exactly.

The network itself is treated as a low-latency scalable fabric whose
transit time is folded into the Table 1 numbers; per-node links are the
bandwidth bottleneck, which is the first-order contention effect (e.g.
the hot-spotting the paper observed when LU prefetched whole columns in
a burst).
"""

from __future__ import annotations

import enum
from typing import List

from repro.config import ContentionConfig
from repro.sim.resource import QueuedResource


class ChargeKind(enum.Enum):
    """The four queued-resource kinds a transaction can charge.

    Shared between the runtime charge methods below and the static
    envelope analyzer (``repro.analysis.latbound``), so the analyzer's
    occupancy model cannot drift from the simulator's.
    """

    BUS = "bus"
    LINK = "link"
    DIRECTORY = "directory"
    MEMORY = "memory"


def occupancy_of(
    contention: ContentionConfig, kind: ChargeKind, data: bool
) -> int:
    """The occupancy one charge of ``kind`` holds its resource for —
    exactly what the ``charge_*`` methods pass to ``QueuedResource``."""
    if kind is ChargeKind.BUS:
        return (
            contention.bus_occupancy_data
            if data
            else contention.bus_occupancy_header
        )
    if kind is ChargeKind.LINK:
        return (
            contention.link_occupancy_data
            if data
            else contention.link_occupancy_header
        )
    if kind is ChargeKind.DIRECTORY:
        return contention.directory_occupancy
    return contention.memory_occupancy


def max_occupancy(contention: ContentionConfig, kind: ChargeKind) -> int:
    """The largest occupancy any single charge of ``kind`` can hold."""
    return max(
        occupancy_of(contention, kind, data=True),
        occupancy_of(contention, kind, data=False),
    )


def stations_per_charge(kind: ChargeKind) -> int:
    """How many distinct queued resources one charge of ``kind`` waits
    on: ``charge_hop`` serializes through a source ``link_out`` *and* a
    destination ``link_in``; every other kind is a single resource."""
    return 2 if kind is ChargeKind.LINK else 1


def max_charges_per_transaction(kind: ChargeKind) -> int:
    """How many times a single transaction can charge one *specific*
    resource of ``kind``: a remote fill crosses the requester's bus
    twice (request out, data in); no path revisits a link, directory,
    or memory unit."""
    return 2 if kind is ChargeKind.BUS else 1


class NodeLinks:
    """The contended resources belonging to one node."""

    __slots__ = ("bus", "link_in", "link_out", "directory_ctl", "memory")

    def __init__(self, node_id: int) -> None:
        self.bus = QueuedResource(f"node{node_id}.bus")
        self.link_in = QueuedResource(f"node{node_id}.link_in")
        self.link_out = QueuedResource(f"node{node_id}.link_out")
        self.directory_ctl = QueuedResource(f"node{node_id}.directory")
        self.memory = QueuedResource(f"node{node_id}.memory")


class Interconnect:
    """Per-node buses and links, plus path-charging helpers.

    Two parallel resource chains exist per node: the *demand* chain used
    by processor-blocking traffic (reads, SC writes, prefetch fetches),
    and a *background* chain used by write-buffer drains and eviction
    write-backs.  DASH gives demand reads priority over buffered writes
    (reads bypass the write buffer, and the bus arbiter favours them),
    so background traffic serializes against itself without inflating
    demand-read queuing.
    """

    def __init__(self, num_nodes: int, contention: ContentionConfig) -> None:
        self.num_nodes = num_nodes
        self.contention = contention
        self.nodes: List[NodeLinks] = [NodeLinks(i) for i in range(num_nodes)]
        self.background: List[NodeLinks] = [
            NodeLinks(i) for i in range(num_nodes)
        ]
        for links in self.background:
            for resource in (
                links.bus,
                links.link_in,
                links.link_out,
                links.directory_ctl,
                links.memory,
            ):
                resource.name = "bg." + resource.name

    def _links(self, node: int, background: bool) -> NodeLinks:
        return self.background[node] if background else self.nodes[node]

    # Every charge method returns the *queuing delay* experienced (0 when
    # the resource chain is idle), not the service completion time.

    def _charge(self, resource: QueuedResource, time: int, occupancy: int) -> int:
        if not self.contention.enabled:
            return 0
        finish = resource.acquire(time, occupancy)
        return finish - occupancy - time

    def charge_bus(
        self, node: int, time: int, data: bool, background: bool = False
    ) -> int:
        occupancy = (
            self.contention.bus_occupancy_data
            if data
            else self.contention.bus_occupancy_header
        )
        return self._charge(self._links(node, background).bus, time, occupancy)

    def charge_hop(
        self, src: int, dst: int, time: int, data: bool, background: bool = False
    ) -> int:
        """Charge one network traversal ``src`` -> ``dst``."""
        occupancy = (
            self.contention.link_occupancy_data
            if data
            else self.contention.link_occupancy_header
        )
        delay = self._charge(
            self._links(src, background).link_out, time, occupancy
        )
        delay += self._charge(
            self._links(dst, background).link_in, time + delay, occupancy
        )
        return delay

    def charge_directory(
        self, node: int, time: int, background: bool = False
    ) -> int:
        return self._charge(
            self._links(node, background).directory_ctl,
            time,
            self.contention.directory_occupancy,
        )

    def charge_memory(self, node: int, time: int, background: bool = False) -> int:
        return self._charge(
            self._links(node, background).memory,
            time,
            self.contention.memory_occupancy,
        )

    # -- fault-layer charges ------------------------------------------------

    def charge_nack(self, node: int, home: int, time: int) -> int:
        """Charge one NACKed request round trip ``node`` -> ``home`` ->
        ``node`` (header-only both ways, plus a directory pass to bounce
        the request).  Returns the queuing delay accumulated; the base
        round-trip latency is the fault plan's ``nack_round_trip_cycles``.
        """
        delay = self.charge_bus(node, time, data=False)
        if home != node:
            delay += self.charge_hop(node, home, time + delay, data=False)
        delay += self.charge_directory(home, time + delay)
        if home != node:
            delay += self.charge_hop(home, node, time + delay, data=False)
        return delay

    def charge_duplicate(self, src: int, dst: int, time: int, data: bool) -> None:
        """Charge a redundantly delivered message on the background
        chain: pure bandwidth pressure, no latency for the original."""
        self.charge_bus(src, time, data=data, background=True)
        if src != dst:
            self.charge_hop(src, dst, time, data=data, background=True)

    def utilization_report(self, elapsed: int):
        """Per-resource utilization, for diagnostics and ablations."""
        report = {}
        for links in self.nodes:
            for resource in (
                links.bus,
                links.link_in,
                links.link_out,
                links.directory_ctl,
                links.memory,
            ):
                report[resource.name] = resource.utilization(elapsed)
        return report
