"""Node bus and interconnection network contention model.

Each node owns three queued resources: its node bus (133 MB/s in DASH,
~4 bytes/pclock), and its network input and output links (~150 MB/s,
~4.5 bytes/pclock).  Coherence transactions charge occupancy on the
resources along their path; the *queuing delay* accumulated (time spent
waiting for each resource to become free) is added to the Table 1 base
latency of the transaction.  Occupancies themselves are considered part
of the base latency, so an unloaded machine reproduces Table 1 exactly.

The network itself is treated as a low-latency scalable fabric whose
transit time is folded into the Table 1 numbers; per-node links are the
bandwidth bottleneck, which is the first-order contention effect (e.g.
the hot-spotting the paper observed when LU prefetched whole columns in
a burst).
"""

from __future__ import annotations

import enum
from typing import List

from repro.config import ContentionConfig
from repro.sim.resource import QueuedResource


class ChargeKind(enum.Enum):
    """The four queued-resource kinds a transaction can charge.

    Shared between the runtime charge methods below and the static
    envelope analyzer (``repro.analysis.latbound``), so the analyzer's
    occupancy model cannot drift from the simulator's.
    """

    BUS = "bus"
    LINK = "link"
    DIRECTORY = "directory"
    MEMORY = "memory"


def occupancy_of(
    contention: ContentionConfig, kind: ChargeKind, data: bool
) -> int:
    """The occupancy one charge of ``kind`` holds its resource for —
    exactly what the ``charge_*`` methods pass to ``QueuedResource``."""
    if kind is ChargeKind.BUS:
        return (
            contention.bus_occupancy_data
            if data
            else contention.bus_occupancy_header
        )
    if kind is ChargeKind.LINK:
        return (
            contention.link_occupancy_data
            if data
            else contention.link_occupancy_header
        )
    if kind is ChargeKind.DIRECTORY:
        return contention.directory_occupancy
    return contention.memory_occupancy


def max_occupancy(contention: ContentionConfig, kind: ChargeKind) -> int:
    """The largest occupancy any single charge of ``kind`` can hold."""
    return max(
        occupancy_of(contention, kind, data=True),
        occupancy_of(contention, kind, data=False),
    )


def stations_per_charge(kind: ChargeKind) -> int:
    """How many distinct queued resources one charge of ``kind`` waits
    on: ``charge_hop`` serializes through a source ``link_out`` *and* a
    destination ``link_in``; every other kind is a single resource."""
    return 2 if kind is ChargeKind.LINK else 1


def max_charges_per_transaction(kind: ChargeKind) -> int:
    """How many times a single transaction can charge one *specific*
    resource of ``kind``: a remote fill crosses the requester's bus
    twice (request out, data in); no path revisits a link, directory,
    or memory unit."""
    return 2 if kind is ChargeKind.BUS else 1


class NodeLinks:
    """The contended resources belonging to one node."""

    __slots__ = ("bus", "link_in", "link_out", "directory_ctl", "memory")

    def __init__(self, node_id: int) -> None:
        self.bus = QueuedResource(f"node{node_id}.bus")
        self.link_in = QueuedResource(f"node{node_id}.link_in")
        self.link_out = QueuedResource(f"node{node_id}.link_out")
        self.directory_ctl = QueuedResource(f"node{node_id}.directory")
        self.memory = QueuedResource(f"node{node_id}.memory")


class Interconnect:
    """Per-node buses and links, plus path-charging helpers.

    Two parallel resource chains exist per node: the *demand* chain used
    by processor-blocking traffic (reads, SC writes, prefetch fetches),
    and a *background* chain used by write-buffer drains and eviction
    write-backs.  DASH gives demand reads priority over buffered writes
    (reads bypass the write buffer, and the bus arbiter favours them),
    so background traffic serializes against itself without inflating
    demand-read queuing.
    """

    def __init__(self, num_nodes: int, contention: ContentionConfig) -> None:
        self.num_nodes = num_nodes
        self.contention = contention
        self.nodes: List[NodeLinks] = [NodeLinks(i) for i in range(num_nodes)]
        self.background: List[NodeLinks] = [
            NodeLinks(i) for i in range(num_nodes)
        ]
        for links in self.background:
            for resource in (
                links.bus,
                links.link_in,
                links.link_out,
                links.directory_ctl,
                links.memory,
            ):
                resource.name = "bg." + resource.name
        # Hot-path scalars (the contention config is frozen; hoisted
        # once).  The charge methods below update the queued resources'
        # bookkeeping inline — one attribute probe per resource instead
        # of a method call per charge — with semantics identical to
        # ``QueuedResource.acquire``.
        self._enabled = contention.enabled
        self._bus_data = contention.bus_occupancy_data
        self._bus_header = contention.bus_occupancy_header
        self._link_data = contention.link_occupancy_data
        self._link_header = contention.link_occupancy_header
        self._directory_occupancy = contention.directory_occupancy
        self._memory_occupancy = contention.memory_occupancy

    def _links(self, node: int, background: bool) -> NodeLinks:
        return self.background[node] if background else self.nodes[node]

    # Every charge method returns the *queuing delay* experienced (0 when
    # the resource chain is idle), not the service completion time.

    def _charge(self, resource: QueuedResource, time: int, occupancy: int) -> int:
        if not self._enabled:
            return 0
        start = time if time > resource._next_free else resource._next_free
        resource._next_free = start + occupancy
        resource._busy_total += occupancy
        resource._transactions += 1
        return start - time

    def charge_bus(
        self, node: int, time: int, data: bool, background: bool = False
    ) -> int:
        if not self._enabled:
            return 0
        occupancy = self._bus_data if data else self._bus_header
        bus = (self.background[node] if background else self.nodes[node]).bus
        start = time if time > bus._next_free else bus._next_free
        bus._next_free = start + occupancy
        bus._busy_total += occupancy
        bus._transactions += 1
        return start - time

    def charge_hop(
        self, src: int, dst: int, time: int, data: bool, background: bool = False
    ) -> int:
        """Charge one network traversal ``src`` -> ``dst``: the source
        node's output link, then (once that is free) the destination
        node's input link."""
        if not self._enabled:
            return 0
        occupancy = self._link_data if data else self._link_header
        links = self.background if background else self.nodes
        out = links[src].link_out
        start = time if time > out._next_free else out._next_free
        out._next_free = start + occupancy
        out._busy_total += occupancy
        out._transactions += 1
        into = links[dst].link_in
        # The downstream link is requested at the upstream service start
        # (``time`` plus the upstream queuing delay).
        start2 = start if start > into._next_free else into._next_free
        into._next_free = start2 + occupancy
        into._busy_total += occupancy
        into._transactions += 1
        return start2 - time

    def charge_directory(
        self, node: int, time: int, background: bool = False
    ) -> int:
        return self._charge(
            self._links(node, background).directory_ctl,
            time,
            self._directory_occupancy,
        )

    def charge_memory(self, node: int, time: int, background: bool = False) -> int:
        return self._charge(
            self._links(node, background).memory,
            time,
            self._memory_occupancy,
        )

    # -- fused transaction paths --------------------------------------------
    #
    # One method per miss-transaction shape, replicating the exact
    # ``charge_*`` sequence the protocol used to issue call-by-call —
    # same request times (each step asks at ``time + delay``-so-far),
    # same occupancy bookkeeping, same returned queuing delay — with a
    # single frame per transaction.  The static envelope analyzer
    # (``repro.analysis.latbound``) models charge *paths*, not call
    # sites, so these fused forms stay within its model by
    # construction; its runtime trace audit would catch any drift.

    def charge_fill_local(self, node: int, time: int, background: bool = False) -> int:
        """READ_MEMORY at the local home: bus(data) + memory."""
        if not self._enabled:
            return 0
        links = (self.background if background else self.nodes)[node]
        occ = self._bus_data
        res = links.bus
        start = time if time > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        t = start
        occ = self._memory_occupancy
        res = links.memory
        start = t if t > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        return start - time

    def charge_write_local(self, node: int, time: int, background: bool = False) -> int:
        """Ownership acquire at the local home: bus(data) + directory +
        memory."""
        if not self._enabled:
            return 0
        links = (self.background if background else self.nodes)[node]
        occ = self._bus_data
        res = links.bus
        start = time if time > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        t = start
        occ = self._directory_occupancy
        res = links.directory_ctl
        start = t if t > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        t = start
        occ = self._memory_occupancy
        res = links.memory
        start = t if t > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        return start - time

    def charge_fill_home(self, node: int, home: int, time: int, background: bool = False) -> int:
        """Remote home memory round trip (read fill or ownership
        acquire, identical path): bus(hdr), hop(node->home, hdr),
        directory, memory, hop(home->node, data), bus(data)."""
        if not self._enabled:
            return 0
        links = self.background if background else self.nodes
        nl = links[node]
        hl = links[home]
        hdr = self._bus_header
        res = nl.bus
        start = time if time > res._next_free else res._next_free
        res._next_free = start + hdr
        res._busy_total += hdr
        res._transactions += 1
        t = start
        lh = self._link_header
        res = nl.link_out
        start = t if t > res._next_free else res._next_free
        res._next_free = start + lh
        res._busy_total += lh
        res._transactions += 1
        res = hl.link_in
        start = start if start > res._next_free else res._next_free
        res._next_free = start + lh
        res._busy_total += lh
        res._transactions += 1
        t = start
        occ = self._directory_occupancy
        res = hl.directory_ctl
        start = t if t > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        t = start
        occ = self._memory_occupancy
        res = hl.memory
        start = t if t > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        t = start
        ld = self._link_data
        res = hl.link_out
        start = t if t > res._next_free else res._next_free
        res._next_free = start + ld
        res._busy_total += ld
        res._transactions += 1
        res = nl.link_in
        start = start if start > res._next_free else res._next_free
        res._next_free = start + ld
        res._busy_total += ld
        res._transactions += 1
        t = start
        occ = self._bus_data
        res = nl.bus
        start = t if t > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        return start - time

    def charge_fetch_owner_local(self, node: int, owner: int, time: int) -> int:
        """Read fill, local home with a remote dirty owner: bus(hdr),
        directory(node), hop(node->owner, hdr), bus(owner, data),
        hop(owner->node, data).  Demand chain only."""
        if not self._enabled:
            return 0
        links = self.nodes
        nl = links[node]
        ol = links[owner]
        hdr = self._bus_header
        res = nl.bus
        start = time if time > res._next_free else res._next_free
        res._next_free = start + hdr
        res._busy_total += hdr
        res._transactions += 1
        t = start
        occ = self._directory_occupancy
        res = nl.directory_ctl
        start = t if t > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        t = start
        lh = self._link_header
        res = nl.link_out
        start = t if t > res._next_free else res._next_free
        res._next_free = start + lh
        res._busy_total += lh
        res._transactions += 1
        res = ol.link_in
        start = start if start > res._next_free else res._next_free
        res._next_free = start + lh
        res._busy_total += lh
        res._transactions += 1
        t = start
        occ = self._bus_data
        res = ol.bus
        start = t if t > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        t = start
        ld = self._link_data
        res = ol.link_out
        start = t if t > res._next_free else res._next_free
        res._next_free = start + ld
        res._busy_total += ld
        res._transactions += 1
        res = nl.link_in
        start = start if start > res._next_free else res._next_free
        res._next_free = start + ld
        res._busy_total += ld
        res._transactions += 1
        return start - time

    def charge_fetch_owner_via(
        self, node: int, via: int, home: int, owner: int, time: int,
        background: bool = False,
    ) -> int:
        """Owner fetch through one intermediate stop: bus(hdr),
        hop(node->via, hdr), directory(home), bus(owner, data),
        hop(owner->node, data).  Covers the dirty-copy-at-home read
        fill (via == home == owner) and the two-party ownership
        transfers."""
        if not self._enabled:
            return 0
        links = self.background if background else self.nodes
        nl = links[node]
        hdr = self._bus_header
        res = nl.bus
        start = time if time > res._next_free else res._next_free
        res._next_free = start + hdr
        res._busy_total += hdr
        res._transactions += 1
        t = start
        lh = self._link_header
        res = nl.link_out
        start = t if t > res._next_free else res._next_free
        res._next_free = start + lh
        res._busy_total += lh
        res._transactions += 1
        res = links[via].link_in
        start = start if start > res._next_free else res._next_free
        res._next_free = start + lh
        res._busy_total += lh
        res._transactions += 1
        t = start
        occ = self._directory_occupancy
        res = links[home].directory_ctl
        start = t if t > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        t = start
        ol = links[owner]
        occ = self._bus_data
        res = ol.bus
        start = t if t > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        t = start
        ld = self._link_data
        res = ol.link_out
        start = t if t > res._next_free else res._next_free
        res._next_free = start + ld
        res._busy_total += ld
        res._transactions += 1
        res = nl.link_in
        start = start if start > res._next_free else res._next_free
        res._next_free = start + ld
        res._busy_total += ld
        res._transactions += 1
        return start - time

    def charge_fetch_owner_remote(
        self, node: int, home: int, owner: int, time: int,
        background: bool = False,
    ) -> int:
        """Three-party owner fetch: bus(hdr), hop(node->home, hdr),
        directory, hop(home->owner, hdr), bus(owner, data),
        hop(owner->node, data)."""
        if not self._enabled:
            return 0
        links = self.background if background else self.nodes
        nl = links[node]
        hl = links[home]
        ol = links[owner]
        hdr = self._bus_header
        res = nl.bus
        start = time if time > res._next_free else res._next_free
        res._next_free = start + hdr
        res._busy_total += hdr
        res._transactions += 1
        t = start
        lh = self._link_header
        res = nl.link_out
        start = t if t > res._next_free else res._next_free
        res._next_free = start + lh
        res._busy_total += lh
        res._transactions += 1
        res = hl.link_in
        start = start if start > res._next_free else res._next_free
        res._next_free = start + lh
        res._busy_total += lh
        res._transactions += 1
        t = start
        occ = self._directory_occupancy
        res = hl.directory_ctl
        start = t if t > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        t = start
        res = hl.link_out
        start = t if t > res._next_free else res._next_free
        res._next_free = start + lh
        res._busy_total += lh
        res._transactions += 1
        res = ol.link_in
        start = start if start > res._next_free else res._next_free
        res._next_free = start + lh
        res._busy_total += lh
        res._transactions += 1
        t = start
        occ = self._bus_data
        res = ol.bus
        start = t if t > res._next_free else res._next_free
        res._next_free = start + occ
        res._busy_total += occ
        res._transactions += 1
        t = start
        ld = self._link_data
        res = ol.link_out
        start = t if t > res._next_free else res._next_free
        res._next_free = start + ld
        res._busy_total += ld
        res._transactions += 1
        res = nl.link_in
        start = start if start > res._next_free else res._next_free
        res._next_free = start + ld
        res._busy_total += ld
        res._transactions += 1
        return start - time

    # -- fault-layer charges ------------------------------------------------

    def charge_nack(self, node: int, home: int, time: int) -> int:
        """Charge one NACKed request round trip ``node`` -> ``home`` ->
        ``node`` (header-only both ways, plus a directory pass to bounce
        the request).  Returns the queuing delay accumulated; the base
        round-trip latency is the fault plan's ``nack_round_trip_cycles``.
        """
        delay = self.charge_bus(node, time, data=False)
        if home != node:
            delay += self.charge_hop(node, home, time + delay, data=False)
        delay += self.charge_directory(home, time + delay)
        if home != node:
            delay += self.charge_hop(home, node, time + delay, data=False)
        return delay

    def charge_duplicate(self, src: int, dst: int, time: int, data: bool) -> None:
        """Charge a redundantly delivered message on the background
        chain: pure bandwidth pressure, no latency for the original."""
        self.charge_bus(src, time, data=data, background=True)
        if src != dst:
            self.charge_hop(src, dst, time, data=data, background=True)

    def utilization_report(self, elapsed: int):
        """Per-resource utilization, for diagnostics and ablations."""
        report = {}
        for links in self.nodes:
            for resource in (
                links.bus,
                links.link_in,
                links.link_out,
                links.directory_ctl,
                links.memory,
            ):
                report[resource.name] = resource.utilization(elapsed)
        return report
